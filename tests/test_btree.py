"""Unit, integration and model-based property tests for the B+-tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.btree import BPlusTree, NodeFormatError, parse_node
from repro.btree.node import (
    InternalNode,
    LeafNode,
    internal_capacity,
    leaf_capacity,
    serialize_internal,
    serialize_leaf,
)
from repro.storage import InMemoryPageStore, UInt64Codec, UIntCodec


def int_tree(key_width=8, leaf_cap=None, page_size=4096, cache=0):
    return BPlusTree(UIntCodec(key_width), UInt64Codec(),
                     leaf_capacity_override=leaf_cap,
                     page_size=page_size, cache_pages=cache)


def encode_pairs(tree, pairs):
    kc, vc = tree.key_codec, tree.value_codec
    return ((kc.encode(k), vc.encode(v)) for k, v in pairs)


def decode_items(tree):
    kc, vc = tree.key_codec, tree.value_codec
    return [(kc.decode(k), vc.decode(v)) for k, v in tree.items()]


class TestNodeLayout:
    def test_leaf_serialize_parse_round_trip(self):
        node = LeafNode(keys=[b"\x00" * 8, b"\x01" * 8],
                        values=[b"A" * 8, b"B" * 8], left=3, right=9)
        raw = serialize_leaf(node, 4096, 8, 8)
        assert len(raw) == 4096
        parsed = parse_node(raw, 8, 8)
        assert parsed.keys == node.keys
        assert parsed.values == node.values
        assert parsed.left == 3 and parsed.right == 9

    def test_internal_serialize_parse_round_trip(self):
        node = InternalNode(keys=[b"\x05" * 8], children=[1, 2])
        raw = serialize_internal(node, 4096, 8)
        parsed = parse_node(raw, 8, 8)
        assert parsed.keys == node.keys
        assert parsed.children == node.children

    def test_leaf_overflow_rejected(self):
        cap = leaf_capacity(128, 8, 8)
        node = LeafNode(keys=[b"\x00" * 8] * (cap + 1),
                        values=[b"v" * 8] * (cap + 1))
        with pytest.raises(NodeFormatError):
            serialize_leaf(node, 128, 8, 8)

    def test_internal_children_count_enforced(self):
        with pytest.raises(NodeFormatError):
            serialize_internal(InternalNode(keys=[b"\x00" * 8], children=[1]),
                               4096, 8)

    def test_corrupt_type_byte_detected(self):
        raw = bytes([7]) + bytes(4095)
        with pytest.raises(NodeFormatError):
            parse_node(raw, 8, 8)

    def test_corrupt_count_detected(self):
        # Leaf claiming more entries than fit in the page.
        raw = bytes([1]) + (5000).to_bytes(2, "big") + bytes(4093)
        with pytest.raises(NodeFormatError):
            parse_node(raw, 8, 8)

    def test_capacity_formulas(self):
        assert leaf_capacity(4096, 16, 48) == (4096 - 19) // 64
        assert internal_capacity(4096, 16) == (4096 - 3 - 8) // 24


class TestBulkLoad:
    def test_items_in_key_order(self):
        tree = int_tree()
        pairs = sorted((int(k), i) for i, k in enumerate(
            np.random.default_rng(0).integers(0, 10**6, size=500)))
        tree.bulk_load(encode_pairs(tree, pairs))
        assert decode_items(tree) == pairs
        assert len(tree) == 500

    def test_unsorted_input_rejected(self):
        tree = int_tree()
        with pytest.raises(ValueError):
            tree.bulk_load(encode_pairs(tree, [(5, 0), (3, 1)]))

    def test_duplicates_survive_bulk_load(self):
        tree = int_tree()
        pairs = [(7, 0), (7, 1), (7, 2), (9, 3)]
        tree.bulk_load(encode_pairs(tree, pairs))
        assert sorted(v for v in
                      (tree.value_codec.decode(r)
                       for r in tree.get_all(tree.key_codec.encode(7)))
                      ) == [0, 1, 2]

    def test_empty_bulk_load(self):
        tree = int_tree()
        tree.bulk_load(iter(()))
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_single_entry(self):
        tree = int_tree()
        tree.bulk_load(encode_pairs(tree, [(42, 7)]))
        assert decode_items(tree) == [(42, 7)]
        assert tree.height == 1

    def test_fill_factor_spreads_leaves(self):
        full = int_tree(leaf_cap=8)
        half = int_tree(leaf_cap=8)
        pairs = [(i, i) for i in range(64)]
        full.bulk_load(encode_pairs(full, pairs))
        half.bulk_load(encode_pairs(half, pairs), fill=0.5)
        assert half.size_bytes() > full.size_bytes()
        assert decode_items(half) == decode_items(full)

    def test_bulk_load_on_nonempty_tree_rejected(self):
        tree = int_tree()
        tree.insert(tree.key_codec.encode(1), tree.value_codec.encode(1))
        with pytest.raises(RuntimeError):
            tree.bulk_load(encode_pairs(tree, [(2, 2)]))

    def test_invalid_fill_rejected(self):
        tree = int_tree()
        with pytest.raises(ValueError):
            tree.bulk_load(encode_pairs(tree, [(1, 1)]), fill=0.0)

    def test_multi_level_structure(self):
        # Small pages force internal fanout 8, so 250 leaves need >= 3 levels.
        tree = int_tree(leaf_cap=4, page_size=128)
        pairs = [(i, i) for i in range(1000)]
        tree.bulk_load(encode_pairs(tree, pairs))
        assert tree.height >= 3
        assert decode_items(tree) == pairs


class TestInsert:
    def test_random_inserts_stay_sorted(self):
        tree = int_tree(leaf_cap=4)
        rng = np.random.default_rng(9)
        pairs = [(int(k), i) for i, k in enumerate(
            rng.integers(0, 1000, size=300))]
        for key, value in pairs:
            tree.insert(tree.key_codec.encode(key),
                        tree.value_codec.encode(value))
        got = decode_items(tree)
        assert sorted(got) == sorted(pairs)
        assert [g[0] for g in got] == sorted(g[0] for g in got)

    def test_insert_into_bulk_loaded_tree(self):
        tree = int_tree(leaf_cap=8)
        tree.bulk_load(encode_pairs(tree, [(i * 2, i) for i in range(100)]))
        tree.insert(tree.key_codec.encode(33), tree.value_codec.encode(999))
        keys = [k for k, _ in decode_items(tree)]
        assert 33 in keys
        assert keys == sorted(keys)
        assert len(tree) == 101

    def test_sibling_links_after_splits(self):
        tree = int_tree(leaf_cap=4)
        for i in range(100):
            tree.insert(tree.key_codec.encode(i), tree.value_codec.encode(i))
        # items() walks right-links; completeness proves the chain is intact.
        assert [k for k, _ in decode_items(tree)] == list(range(100))
        # nearest() walks left-links from the far end.
        near = tree.nearest(tree.key_codec.encode(99), 100)
        assert len(near) == 100

    def test_wrong_width_rejected(self):
        tree = int_tree()
        with pytest.raises(ValueError):
            tree.insert(b"\x00" * 4, tree.value_codec.encode(0))


class TestLookups:
    def make_loaded(self):
        tree = int_tree(leaf_cap=6)
        pairs = [(i * 3, i) for i in range(200)]
        tree.bulk_load(encode_pairs(tree, pairs))
        return tree, pairs

    def test_get_all_exact(self):
        tree, _ = self.make_loaded()
        got = tree.get_all(tree.key_codec.encode(33))
        assert [tree.value_codec.decode(v) for v in got] == [11]

    def test_get_all_missing(self):
        tree, _ = self.make_loaded()
        assert tree.get_all(tree.key_codec.encode(34)) == []

    def test_range_inclusive(self):
        tree, _ = self.make_loaded()
        got = [tree.key_codec.decode(k) for k, _ in tree.range(
            tree.key_codec.encode(30), tree.key_codec.encode(45))]
        assert got == [30, 33, 36, 39, 42, 45]

    def test_range_empty_and_inverted(self):
        tree, _ = self.make_loaded()
        assert list(tree.range(tree.key_codec.encode(100),
                               tree.key_codec.encode(90))) == []
        assert [tree.key_codec.decode(k) for k, _ in tree.range(
            tree.key_codec.encode(31), tree.key_codec.encode(32))] == []

    def test_nearest_exact_midpoint(self):
        tree, pairs = self.make_loaded()
        got = tree.nearest(tree.key_codec.encode(300), 7)
        keys = sorted(tree.key_codec.decode(k) for k, _ in got)
        expected = sorted(sorted((k for k, _ in pairs),
                                 key=lambda k: abs(k - 300))[:7])
        assert keys == expected

    def test_nearest_at_boundaries(self):
        tree, _ = self.make_loaded()
        low = tree.nearest(tree.key_codec.encode(0), 5)
        assert sorted(tree.key_codec.decode(k) for k, _ in low) == [
            0, 3, 6, 9, 12]
        high = tree.nearest(tree.key_codec.encode(597), 5)
        assert sorted(tree.key_codec.decode(k) for k, _ in high) == [
            585, 588, 591, 594, 597]

    def test_nearest_more_than_size_returns_all(self):
        tree, pairs = self.make_loaded()
        got = tree.nearest(tree.key_codec.encode(300), 10_000)
        assert len(got) == len(pairs)

    def test_nearest_zero_or_empty(self):
        tree, _ = self.make_loaded()
        assert tree.nearest(tree.key_codec.encode(0), 0) == []
        empty = int_tree()
        assert empty.nearest(empty.key_codec.encode(0), 5) == []

    def test_page_reads_counted_during_search(self):
        tree, _ = self.make_loaded()
        tree.stats.reset()
        tree.nearest(tree.key_codec.encode(300), 10)
        assert tree.stats.page_reads >= tree.height


class TestModelBased:
    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(0, 2**32)),
                    min_size=0, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_against_sorted_list_model(self, operations):
        tree = int_tree(leaf_cap=4)
        model = []
        for key, value in operations:
            tree.insert(tree.key_codec.encode(key),
                        tree.value_codec.encode(value))
            model.append((key, value))
        model.sort(key=lambda pair: pair[0])
        got = decode_items(tree)
        assert sorted(got) == sorted(model)
        assert [g[0] for g in got] == [m[0] for m in model]

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=80,
                    unique=True),
           st.integers(0, 10**6), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_nearest_matches_brute_force(self, keys, probe, count):
        tree = int_tree(leaf_cap=4)
        tree.bulk_load(encode_pairs(tree, [(k, 0) for k in sorted(keys)]))
        got = [tree.key_codec.decode(k)
               for k, _ in tree.nearest(tree.key_codec.encode(probe), count)]
        expected = sorted(keys, key=lambda k: abs(k - probe))[:count]
        assert sorted(abs(g - probe) for g in got) == sorted(
            abs(e - probe) for e in expected)
