"""Chunked / streaming ingestion: ``repro.build(spec, data=<iterator>)``.

The streaming path must index the same points the in-memory path would
(reference sets differ — reservoir sampling vs one-shot choice — but
with exhaustive budgets both reproduce the exact-scan oracle), honour
both metrics, persist/reopen like any other snapshot, and refuse the
configurations that cannot stream (SSS references, metadata, shards).
"""

import numpy as np
import pytest

from repro.core import HDIndex, HDIndexParams, IndexSpec, open_index
from repro.core.factory import build
from repro.core.spec import Topology
from repro.distance import euclidean_to_many, normalize_rows, top_k_smallest
from repro.datasets import iter_hdf5_chunks
from repro.datasets.loaders import hdf5_shape

DIM = 10
N = 300


def stream_params(**overrides):
    defaults = dict(num_trees=2, num_references=5, hilbert_order=6,
                    alpha=N, beta=N, gamma=N, seed=9,
                    reference_method="random")
    defaults.update(overrides)
    return HDIndexParams(**defaults)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(21)
    return rng.uniform(-5.0, 5.0, size=(N, DIM))


def chunks_of(data, rows=47):
    for start in range(0, len(data), rows):
        yield data[start:start + rows]


class TestStreamingBuild:
    def test_exact_scan_parity(self, corpus):
        """With α ≥ n the streamed index reproduces the brute-force
        oracle over the descriptors as stored."""
        index = build(IndexSpec(params=stream_params()),
                      chunks_of(corpus))
        assert index.count == N
        assert index.build_stats().extra["streamed"] is True
        query = corpus[17] + 0.05
        ids, dists = index.query(query, k=8)
        stored = index.heap.gather(np.arange(N))
        exact = euclidean_to_many(query, stored)
        best = top_k_smallest(exact, 8)
        np.testing.assert_array_equal(ids, best)
        np.testing.assert_array_equal(dists, exact[best])

    def test_stored_rows_match_source(self, corpus):
        index = HDIndex(stream_params())
        index.build_from_chunks(chunks_of(corpus, rows=31))
        stored = index.heap.gather(np.arange(N))
        np.testing.assert_allclose(stored, corpus, atol=1e-5)

    def test_deterministic_across_chunkings(self, corpus):
        """Same stream + seed → same reference set and same answers,
        regardless of how the stream was blocked."""
        a = HDIndex(stream_params())
        a.build_from_chunks(chunks_of(corpus, rows=31))
        b = HDIndex(stream_params())
        b.build_from_chunks(chunks_of(corpus, rows=144))
        np.testing.assert_array_equal(a.references.indices,
                                      b.references.indices)
        query = corpus[3] - 0.1
        np.testing.assert_array_equal(a.query(query, k=5)[0],
                                      b.query(query, k=5)[0])

    def test_empty_blocks_are_skipped(self, corpus):
        def with_gaps():
            yield corpus[:0]
            yield corpus[:100]
            yield corpus[100:100]
            yield corpus[100:]
        index = HDIndex(stream_params())
        index.build_from_chunks(with_gaps())
        assert index.count == N

    def test_persist_and_reopen(self, corpus, tmp_path):
        spec = IndexSpec(params=stream_params(), backend="file")
        index = build(spec, chunks_of(corpus), storage_dir=str(tmp_path))
        query = corpus[42]
        want = index.query(query, k=6)
        index.close()
        with open_index(str(tmp_path)) as reopened:
            got = reopened.query(query, k=6)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])

    def test_angular_streaming(self, corpus):
        ndata = normalize_rows(corpus)
        index = HDIndex(stream_params(metric="angular"))
        index.build_from_chunks(chunks_of(ndata))
        query = ndata[7] * 3.0  # engine normalises the query
        ids, _ = index.query(query, k=3)
        assert ids[0] == 7
        unnormalised = HDIndex(stream_params(metric="angular"))
        with pytest.raises(ValueError, match="unit-normalised"):
            unnormalised.build_from_chunks(chunks_of(corpus))

    def test_inserts_after_streaming_build(self, corpus):
        index = HDIndex(stream_params())
        index.build_from_chunks(chunks_of(corpus))
        fresh = np.full(DIM, 4.9)
        new_id = index.insert(fresh)
        ids, _ = index.query(fresh, k=1)
        assert ids[0] == new_id


class TestStreamingRestrictions:
    def test_sss_references_rejected(self, corpus):
        index = HDIndex(stream_params(reference_method="sss"))
        with pytest.raises(ValueError, match="random"):
            index.build_from_chunks(chunks_of(corpus))

    def test_metadata_rejected(self, corpus):
        with pytest.raises(ValueError, match="not supported with a "
                                             "streaming build"):
            build(IndexSpec(params=stream_params()), chunks_of(corpus),
                  metadata=[{"a": 1}] * N)

    def test_sharded_rejected(self, corpus):
        spec = IndexSpec(params=stream_params(),
                         topology=Topology(shards=2))
        with pytest.raises(ValueError, match="sharded"):
            build(spec, chunks_of(corpus))

    def test_empty_stream_rejected(self):
        index = HDIndex(stream_params())
        with pytest.raises(ValueError, match="empty dataset"):
            index.build_from_chunks(iter([]))

    def test_ragged_stream_rejected(self, corpus):
        def ragged():
            yield corpus[:50]
            yield corpus[50:100, :DIM - 1]
        index = HDIndex(stream_params())
        with pytest.raises(ValueError, match="dimensionality"):
            index.build_from_chunks(ragged())

    def test_more_references_than_rows_rejected(self, corpus):
        index = HDIndex(stream_params(num_references=N + 1,
                                      alpha=N + 1, beta=N + 1,
                                      gamma=N + 1))
        with pytest.raises(ValueError, match="exceeds the stream"):
            index.build_from_chunks(chunks_of(corpus))


class TestHdf5Loader:
    """h5py is optional (and absent in CI); its import gate must raise a
    helpful error, and the real read path runs only when available."""

    def test_missing_h5py_raises_helpfully(self, tmp_path):
        try:
            import h5py  # noqa: F401
            pytest.skip("h5py installed; gate not exercised")
        except ImportError:
            pass
        with pytest.raises(ImportError, match="h5py"):
            list(iter_hdf5_chunks(tmp_path / "x.hdf5", "train"))
        with pytest.raises(ImportError, match="h5py"):
            hdf5_shape(tmp_path / "x.hdf5", "train")

    def test_chunk_rows_validated_before_import(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_rows"):
            list(iter_hdf5_chunks(tmp_path / "x.hdf5", "train",
                                  chunk_rows=0))

    def test_round_trip_when_h5py_available(self, tmp_path):
        h5py = pytest.importorskip("h5py")
        data = np.arange(60.0).reshape(12, 5)
        path = tmp_path / "corpus.hdf5"
        with h5py.File(path, "w") as handle:
            handle.create_dataset("train", data=data)
        assert hdf5_shape(path, "train") == (12, 5)
        blocks = list(iter_hdf5_chunks(path, "train", chunk_rows=5))
        np.testing.assert_array_equal(np.vstack(blocks), data)
        capped = list(iter_hdf5_chunks(path, "train", chunk_rows=5,
                                       max_vectors=7))
        assert sum(len(b) for b in capped) == 7
        with pytest.raises(ValueError, match="not found"):
            list(iter_hdf5_chunks(path, "test"))
