"""Unit and property tests for the lower-bound filters (Sec. 4.2).

The load-bearing invariant: *neither filter ever exceeds the true distance*
(they are lower bounds), and Ptolemaic is at least as tight as triangular
on average — the reason the paper applies it second.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    filter_candidates,
    ptolemaic_lower_bounds,
    triangular_lower_bounds,
)
from repro.distance import euclidean_to_many, pairwise_euclidean

finite = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


def make_instance(seed, n=30, m=6, dim=10):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, dim)) * 10
    refs = rng.normal(size=(m, dim)) * 10
    query = rng.normal(size=dim) * 10
    query_ref = euclidean_to_many(query, refs)
    cand_ref = pairwise_euclidean(points, refs)
    ref_ref = pairwise_euclidean(refs, refs)
    true = euclidean_to_many(query, points)
    return query_ref, cand_ref, ref_ref, true


class TestTriangular:
    def test_is_a_lower_bound(self):
        for seed in range(5):
            query_ref, cand_ref, _, true = make_instance(seed)
            bounds = triangular_lower_bounds(query_ref, cand_ref)
            assert np.all(bounds <= true + 1e-9)

    def test_exact_when_point_is_a_reference(self):
        rng = np.random.default_rng(0)
        refs = rng.normal(size=(4, 6))
        query = rng.normal(size=6)
        query_ref = euclidean_to_many(query, refs)
        # Candidate 0 IS reference 0: |d(q,R0) - 0| = d(q,R0), tight.
        cand_ref = pairwise_euclidean(refs[:1], refs)
        bounds = triangular_lower_bounds(query_ref, cand_ref)
        assert bounds[0] == pytest.approx(query_ref[0])

    def test_takes_max_over_references(self):
        query_ref = np.asarray([10.0, 2.0])
        cand_ref = np.asarray([[1.0, 1.0]])
        assert triangular_lower_bounds(query_ref, cand_ref)[0] == 9.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            triangular_lower_bounds(np.zeros(3), np.zeros((5, 4)))

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_property(self, seed):
        query_ref, cand_ref, _, true = make_instance(seed, n=12, m=4, dim=6)
        bounds = triangular_lower_bounds(query_ref, cand_ref)
        assert np.all(bounds <= true + 1e-8)


class TestPtolemaic:
    def test_is_a_lower_bound(self):
        for seed in range(5):
            query_ref, cand_ref, ref_ref, true = make_instance(seed)
            bounds = ptolemaic_lower_bounds(query_ref, cand_ref, ref_ref)
            assert np.all(bounds <= true + 1e-9)

    def test_at_least_as_tight_on_average(self):
        """The Sec. 4.2 claim: Ptolemaic yields tighter bounds (on average;
        pointwise it can lose to triangular for specific pairs)."""
        totals_tri, totals_ptol = 0.0, 0.0
        for seed in range(10):
            query_ref, cand_ref, ref_ref, _ = make_instance(seed, m=8)
            totals_tri += triangular_lower_bounds(query_ref, cand_ref).sum()
            totals_ptol += ptolemaic_lower_bounds(
                query_ref, cand_ref, ref_ref).sum()
        assert totals_ptol >= 0.8 * totals_tri

    def test_single_reference_falls_back_to_triangular(self):
        query_ref, cand_ref, ref_ref, _ = make_instance(0, m=1)
        np.testing.assert_allclose(
            ptolemaic_lower_bounds(query_ref, cand_ref, ref_ref),
            triangular_lower_bounds(query_ref, cand_ref))

    def test_coincident_references_fall_back(self):
        query_ref = np.asarray([3.0, 3.0])
        cand_ref = np.asarray([[1.0, 1.0], [5.0, 5.0]])
        ref_ref = np.zeros((2, 2))  # degenerate: all pairs distance zero
        np.testing.assert_allclose(
            ptolemaic_lower_bounds(query_ref, cand_ref, ref_ref),
            triangular_lower_bounds(query_ref, cand_ref))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ptolemaic_lower_bounds(np.zeros(3), np.zeros((5, 3)),
                                   np.zeros((2, 2)))
        with pytest.raises(ValueError):
            ptolemaic_lower_bounds(np.zeros(3), np.zeros((5, 4)),
                                   np.zeros((3, 3)))

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_property(self, seed):
        query_ref, cand_ref, ref_ref, true = make_instance(
            seed, n=12, m=5, dim=6)
        bounds = ptolemaic_lower_bounds(query_ref, cand_ref, ref_ref)
        assert np.all(bounds <= true + 1e-8)


class TestFilterCandidates:
    def test_keeps_smallest_bounds(self):
        bounds = np.asarray([4.0, 1.0, 3.0, 2.0])
        kept = filter_candidates(bounds, 2)
        assert kept.tolist() == [1, 3]

    def test_keep_all(self):
        bounds = np.asarray([2.0, 1.0])
        assert filter_candidates(bounds, 5).tolist() == [1, 0]

    def test_never_drops_a_true_nearest_with_valid_bounds(self):
        """If the filter keeps j candidates and the true NN's lower bound is
        among the j smallest, it survives — sanity for the pipeline."""
        query_ref, cand_ref, ref_ref, true = make_instance(3)
        bounds = triangular_lower_bounds(query_ref, cand_ref)
        nearest = int(np.argmin(true))
        kept = filter_candidates(bounds, 15)
        # The true nearest has a small lower bound, so a 50% cut keeps it
        # in this well-separated instance.
        assert nearest in kept.tolist()
