"""Fault injection around compaction and generation hot-swap.

Two deterministic crash seams drive these tests:

* :data:`repro.wal.manager._FAULT_HOOK` — runs after the new generation
  is fully written but *before* ``CURRENT`` is published (the widest
  compaction crash window);
* :data:`repro.core.procpool._FAULT_HOOK` — fork-inherited, runs at
  worker task entry (deterministic SIGKILL of a worker process).

The contracts under test: a failed compaction leaves ``CURRENT`` (and
the log) untouched and the index serving correct answers; a worker
SIGKILLed around a hot swap surfaces a typed error and the pool
recovers; and a :class:`~repro.serve.QueryService` swap never fails a
single submitted future.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading

import numpy as np
import pytest

import repro.core.procpool as procpool
import repro.wal.manager as wal_manager
from repro.core import (
    Execution,
    HDIndex,
    HDIndexParams,
    IndexSpec,
    WorkerCrashed,
    build,
    open_index,
)
from repro.serve import QueryService, ServiceClosed, ServiceConfig
from repro.wal import WAL_FILE, read_current

DIM = 6
BASE_N = 120
WAIT = 60.0

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault hook relies on fork-inherited worker state")


def _params(directory=None):
    return HDIndexParams(num_trees=2, hilbert_order=6, num_references=4,
                         alpha=512, gamma=512, use_ptolemaic=False,
                         domain=(0.0, 100.0), seed=9,
                         storage_dir=directory)


def _data(seed=61, count=BASE_N):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 100.0, size=(count, DIM))


@pytest.fixture
def clear_fault_hooks():
    yield
    procpool._FAULT_HOOK = None
    wal_manager._FAULT_HOOK = None


def _oracle(vectors, deleted=()):
    index = HDIndex(_params())
    index.build(np.asarray(vectors, dtype=np.float64))
    for object_id in deleted:
        index.delete(object_id)
    return index


class TestCompactionFailure:
    def test_failed_compaction_keeps_old_generation(self, tmp_path,
                                                    clear_fault_hooks):
        directory = tmp_path / "snap"
        data = _data()
        index = build(IndexSpec(params=_params(),
                                execution=Execution(wal=True)),
                      data, storage_dir=str(directory))
        try:
            extra = _data(62, 6)
            for vector in extra:
                index.insert(vector)
            log_size = (directory / WAL_FILE).stat().st_size
            assert log_size > 0

            wal_manager._FAULT_HOOK = _boom
            with pytest.raises(RuntimeError, match="injected"):
                index.compact()

            # CURRENT was never published (first compaction: still
            # absent) and the log was not truncated — nothing durable
            # moved.
            assert read_current(str(directory)) is None
            assert (directory / WAL_FILE).stat().st_size == log_size
            # The live index still answers from base + delta, correctly.
            oracle = _oracle(np.vstack([data, extra]))
            ids, dists = index.query(data[3], 5)
            oracle_ids, oracle_dists = oracle.query(data[3], 5)
            np.testing.assert_array_equal(ids, oracle_ids)
            np.testing.assert_array_equal(dists, oracle_dists)

            # Clearing the fault lets the *same* index compact cleanly.
            wal_manager._FAULT_HOOK = None
            generation = index.compact()
            assert generation == 1
            assert read_current(str(directory)) == "gen-000001"
            assert (directory / WAL_FILE).stat().st_size == 0
            ids, _ = index.query(data[3], 5)
            np.testing.assert_array_equal(ids, oracle_ids)
            oracle.close()
        finally:
            index.close()

    def test_failed_second_compaction_keeps_previous(self, tmp_path,
                                                     clear_fault_hooks):
        directory = tmp_path / "snap"
        index = build(IndexSpec(params=_params(),
                                execution=Execution(wal=True)),
                      _data(), storage_dir=str(directory))
        try:
            index.insert(_data(63, 1)[0])
            index.compact()
            assert read_current(str(directory)) == "gen-000001"
            index.insert(_data(64, 1)[0])
            wal_manager._FAULT_HOOK = _boom
            with pytest.raises(RuntimeError, match="injected"):
                index.compact()
            assert read_current(str(directory)) == "gen-000001"
        finally:
            index.close()


def _boom():
    raise RuntimeError("injected compaction fault")


@needs_fork
class TestWorkerDeathAroundSwap:
    def test_sigkilled_worker_after_swap_recovers(self, tmp_path,
                                                  clear_fault_hooks):
        """SIGKILL the worker servicing the first scan after the hot
        swap: the query fails typed, the pool restarts onto the *new*
        generation, and answers regain byte-identical parity."""
        directory = tmp_path / "snap"
        data = _data()
        flag = tmp_path / "kill-flag"
        index = build(
            IndexSpec(params=_params(),
                      execution=Execution(kind="process", workers=2)),
            data, storage_dir=str(directory))
        try:
            procpool._FAULT_HOOK = _make_flag_killer(str(flag))
            index.query(data[0], 3)  # pool up, hook armed but dormant
            extra = _data(65, 5)
            for vector in extra:
                index.insert(vector)
            flag.touch()
            generation = index.compact()  # hot swap: pool re-binds
            assert generation == 1
            with pytest.raises(WorkerCrashed):
                index.query(data[1], 5)
            flag.unlink()  # next pool generation comes up healthy
            oracle = _oracle(np.vstack([data, extra]))
            ids, dists = index.query(data[1], 5)
            oracle_ids, oracle_dists = oracle.query(data[1], 5)
            np.testing.assert_array_equal(ids, oracle_ids)
            np.testing.assert_array_equal(dists, oracle_dists)
            oracle.close()
        finally:
            procpool._FAULT_HOOK = None
            index.close()


def _make_flag_killer(flag_path):
    def hook():
        if os.path.exists(flag_path):
            os.kill(os.getpid(), signal.SIGKILL)
    return hook


class TestServiceSwap:
    def _serving_snapshot(self, tmp_path):
        directory = tmp_path / "snap"
        data = _data()
        index = build(IndexSpec(params=_params(),
                                execution=Execution(wal=True)),
                      data, storage_dir=str(directory))
        return directory, data, index

    def test_zero_failed_futures_during_swap(self, tmp_path):
        directory, data, writer = self._serving_snapshot(tmp_path)
        service = QueryService(
            open_index(directory, wal=False),
            ServiceConfig(max_batch=8, max_wait_ms=1.0)).start()
        service._owns_index = True
        errors: list[Exception] = []
        results = 0
        stop = threading.Event()

        def client(offset):
            nonlocal results
            rng = np.random.default_rng(offset)
            while not stop.is_set():
                future = service.submit(data[rng.integers(0, BASE_N)], 3)
                try:
                    future.result(timeout=WAIT)
                    results += 1
                except Exception as error:  # pragma: no cover - fails test
                    errors.append(error)

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(4)]
        try:
            for thread in threads:
                thread.start()
            for vector in _data(66, 8):
                writer.insert(vector)
            writer.delete(2)
            writer.compact()
            service.swap_snapshot(timeout=WAIT)
            # Keep hammering briefly on the new generation too.
            threading.Event().wait(0.1)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        assert results > 0
        assert service.index.count == BASE_N + 8
        oracle = _oracle(np.vstack([_data(), _data(66, 8)]), {2})
        ids, dists = service.submit(data[4], 5).result(timeout=WAIT)
        oracle_ids, oracle_dists = oracle.query(data[4], 5)
        np.testing.assert_array_equal(ids, oracle_ids)
        np.testing.assert_array_equal(dists, oracle_dists)
        oracle.close()
        service.stop()
        writer.close()

    def test_swap_before_start_applies_immediately(self, tmp_path):
        directory, data, writer = self._serving_snapshot(tmp_path)
        writer.insert(_data(67, 1)[0])
        writer.compact()
        service = QueryService(open_index(directory, wal=False),
                               ServiceConfig())
        service._owns_index = True
        service.swap_snapshot(timeout=WAIT)
        assert service.index.count == BASE_N + 1
        service.stop()
        writer.close()

    def test_swap_after_stop_raises_service_closed(self, tmp_path):
        directory, data, writer = self._serving_snapshot(tmp_path)
        service = QueryService(open_index(directory, wal=False),
                               ServiceConfig())
        service._owns_index = True
        service.stop()
        with pytest.raises(ServiceClosed):
            service.swap_snapshot(timeout=WAIT)
        writer.close()

    def test_swap_without_target_raises(self):
        index = HDIndex(_params())
        index.build(_data())
        service = QueryService(index, ServiceConfig())
        try:
            with pytest.raises(ValueError, match="directory"):
                service.swap_snapshot()
        finally:
            service.stop()
            index.close()
