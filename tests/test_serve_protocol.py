"""Tests for the serve wire protocol: framing, lossless array transport,
the typed-error registry, and replica placement hashing.

The load-bearing invariant: a query answer that crossed the wire is
*byte-identical* to the in-process answer — float64 arrays survive the
JSON encoding exactly, and typed errors come back as the same exception
classes the local API raises.
"""

import numpy as np
import pytest

from repro.core.procpool import WorkerCrashed, WorkerTimeout
from repro.core.router import placement_order
from repro.serve import (
    DeadlineExceeded,
    ProtocolError,
    RemoteError,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.serve import protocol


class TestArrayCodec:
    def test_float64_roundtrip_is_byte_identical(self):
        rng = np.random.default_rng(3)
        array = rng.uniform(-1e6, 1e6, size=(4, 7))
        # Adversarial values a decimal round-trip would mangle.
        array[0, 0] = np.nextafter(1.0, 2.0)
        array[0, 1] = np.inf
        array[0, 2] = 1e-308
        decoded = protocol.decode_array(protocol.encode_array(array))
        assert decoded.dtype == array.dtype
        assert decoded.tobytes() == array.tobytes()

    def test_int64_roundtrip(self):
        ids = np.array([[5, -1, 2**62]], dtype=np.int64)
        decoded = protocol.decode_array(protocol.encode_array(ids))
        assert decoded.dtype == np.int64
        assert np.array_equal(decoded, ids)

    def test_decoded_array_is_writable(self):
        decoded = protocol.decode_array(
            protocol.encode_array(np.zeros(3)))
        decoded[0] = 1.0  # np.frombuffer alone would be read-only

    def test_malformed_payload_raises_protocol_error(self):
        for payload in ({}, {"b64": "!!!", "dtype": "<f8", "shape": [1]},
                        {"b64": "", "dtype": "nope", "shape": [1]}):
            with pytest.raises(ProtocolError):
                protocol.decode_array(payload)


class TestFraming:
    def test_frame_roundtrip(self):
        message = {"op": "ping", "id": 7}
        frame = protocol.encode_frame(message)
        decoder = protocol.FrameDecoder()
        decoder.feed(frame)
        assert decoder.next_frame() == message
        assert decoder.next_frame() is None
        assert not decoder.mid_frame

    def test_decoder_handles_arbitrary_chunking(self):
        messages = [{"op": "ping", "id": i} for i in range(5)]
        stream = b"".join(protocol.encode_frame(m) for m in messages)
        decoder = protocol.FrameDecoder()
        received = []
        for offset in range(0, len(stream), 3):  # 3-byte drips
            decoder.feed(stream[offset:offset + 3])
            while (frame := decoder.next_frame()) is not None:
                received.append(frame)
        assert received == messages
        assert not decoder.mid_frame

    def test_torn_tail_is_detectable(self):
        frame = protocol.encode_frame({"op": "ping", "id": 1})
        decoder = protocol.FrameDecoder()
        decoder.feed(frame[:-2])
        assert decoder.next_frame() is None
        assert decoder.mid_frame

    def test_oversized_length_prefix_rejected(self):
        import struct
        decoder = protocol.FrameDecoder()
        decoder.feed(struct.pack("!I", protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    def test_non_object_payload_rejected(self):
        import struct
        body = b"[1,2,3]"
        decoder = protocol.FrameDecoder()
        decoder.feed(struct.pack("!I", len(body)) + body)
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_body(b"\xff\xfe not json")


class TestErrorRegistry:
    @pytest.mark.parametrize("error", [
        ServiceOverloaded("queue full"),
        ServiceClosed("stopped"),
        DeadlineExceeded("late"),
        WorkerCrashed("signal 9"),
        WorkerTimeout("5s"),
        ValueError("k must be >= 1, got 0"),
    ])
    def test_typed_errors_cross_the_wire_by_class(self, error):
        rebuilt = protocol.wire_to_error(protocol.error_to_wire(error))
        assert type(rebuilt) is type(error)
        assert str(rebuilt) == str(error)

    def test_unknown_type_becomes_remote_error(self):
        rebuilt = protocol.wire_to_error(
            {"type": "FutureServerError", "message": "newer server"})
        assert isinstance(rebuilt, RemoteError)
        assert rebuilt.remote_type == "FutureServerError"
        assert "newer server" in str(rebuilt)

    def test_deadline_exceeded_is_not_retryable(self):
        # DeadlineExceeded is a TimeoutError and hence an OSError
        # subclass; the router must branch on it explicitly *before*
        # the retryable tuple (which includes OSError).  This pins the
        # trap so a refactor cannot silently reintroduce retry-on-
        # deadline.
        assert isinstance(DeadlineExceeded("x"), OSError)

    def test_decode_result_raises_typed_error(self):
        response = protocol.error_response(1, ServiceOverloaded("full"))
        with pytest.raises(ServiceOverloaded):
            protocol.decode_result(response)

    def test_decode_result_returns_arrays(self):
        ids = np.array([3, 1], dtype=np.int64)
        dists = np.array([0.0, 2.5])
        got_ids, got_dists = protocol.decode_result(
            protocol.query_response(9, ids, dists))
        assert np.array_equal(got_ids, ids)
        assert got_dists.tobytes() == dists.tobytes()


class TestPlacement:
    def test_placement_is_a_permutation(self):
        order = placement_order(b"query-bytes", 5)
        assert sorted(order) == list(range(5))

    def test_placement_is_deterministic(self):
        for key in (b"", b"a", np.arange(8.0).tobytes()):
            assert placement_order(key, 4) == placement_order(key, 4)

    def test_salt_reshuffles(self):
        keys = [f"key-{i}".encode() for i in range(64)]
        plain = [placement_order(k, 4)[0] for k in keys]
        salted = [placement_order(k, 4, salt=b"v2")[0] for k in keys]
        assert plain != salted

    def test_consistent_hashing_property(self):
        """Removing one node only moves the keys that lived on it."""
        keys = [f"key-{i}".encode() for i in range(200)]
        for key in keys:
            before = placement_order(key, 4)
            after = placement_order(key, 3)
            survivors_before = [n for n in before if n < 3]
            # Relative order of surviving nodes is unchanged: a key
            # whose home survives keeps its home; a key homed on the
            # removed node falls to its existing second choice.
            assert survivors_before == after

    def test_distribution_is_balanced(self):
        homes = [placement_order(f"q{i}".encode(), 4)[0]
                 for i in range(2000)]
        counts = np.bincount(homes, minlength=4)
        assert counts.min() > 0.7 * 2000 / 4

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            placement_order(b"x", 0)
