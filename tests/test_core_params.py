"""Unit tests for HDIndexParams and the Eq. (4) leaf-order arithmetic."""

import pytest

from repro.core import (
    HDIndexParams,
    TABLE3_CONFIGS,
    TABLE3_CONSISTENT,
    TABLE3_LEAF_ORDERS,
    rdb_leaf_order,
    recommended_params,
)


class TestLeafOrder:
    def test_reproduces_table3_consistent_rows(self):
        """SIFTn=63, Yorck=36, SUN=13, Audio=28 follow Eq. (4) exactly."""
        for name in TABLE3_CONSISTENT:
            _, omega, eta, m = TABLE3_CONFIGS[name]
            assert rdb_leaf_order(eta, omega, m) == TABLE3_LEAF_ORDERS[name], name

    def test_enron_glove_rows_are_inconsistent_with_eq4(self):
        """Documented discrepancy: Eq. (4) gives 33/46, Table 3 prints 18/40."""
        _, omega, eta, m = TABLE3_CONFIGS["Enron"]
        assert rdb_leaf_order(eta, omega, m) == 33
        _, omega, eta, m = TABLE3_CONFIGS["Glove"]
        assert rdb_leaf_order(eta, omega, m) == 46

    def test_eq4_arithmetic_by_hand(self):
        # η=16, ω=8, m=10: entry = 16 + 40 + 8 = 64 B; (4096-17)//64 = 63.
        assert rdb_leaf_order(16, 8, 10, 4096) == 63

    def test_larger_page_holds_more(self):
        assert rdb_leaf_order(16, 8, 10, 8192) > rdb_leaf_order(16, 8, 10, 4096)

    def test_more_references_means_fewer_entries(self):
        assert rdb_leaf_order(16, 8, 20) < rdb_leaf_order(16, 8, 10)

    def test_entry_too_large_rejected(self):
        with pytest.raises(ValueError):
            rdb_leaf_order(4096, 32, 10, page_size=4096)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            rdb_leaf_order(0, 8, 10)
        with pytest.raises(ValueError):
            rdb_leaf_order(16, 0, 10)


class TestParams:
    def test_defaults_match_paper_recommendations(self):
        params = HDIndexParams()
        assert params.num_trees == 8
        assert params.num_references == 10
        assert params.alpha == 4096
        assert params.reference_method == "sss"
        assert params.sss_fraction == 0.3
        assert params.use_ptolemaic is False  # Sec. 5.2.5 recommendation
        assert params.page_size == 4096
        assert params.cache_pages == 0        # caching off, Sec. 5

    def test_validation(self):
        with pytest.raises(ValueError):
            HDIndexParams(num_trees=0)
        with pytest.raises(ValueError):
            HDIndexParams(num_references=0)
        with pytest.raises(ValueError):
            HDIndexParams(alpha=0)
        with pytest.raises(ValueError):
            HDIndexParams(reference_method="magic")
        with pytest.raises(ValueError):
            HDIndexParams(partition_scheme="diagonal")
        with pytest.raises(ValueError):
            HDIndexParams(sss_fraction=1.5)

    def test_resolve_filter_sizes_defaults(self):
        params = HDIndexParams(alpha=4096, use_ptolemaic=True)
        alpha, beta, gamma = params.resolve_filter_sizes(k=10)
        assert alpha == 4096
        assert beta == 2048
        assert gamma == 1024

    def test_resolve_collapses_beta_without_ptolemaic(self):
        params = HDIndexParams(alpha=4096, use_ptolemaic=False)
        alpha, beta, gamma = params.resolve_filter_sizes(k=10)
        assert beta == gamma == 1024

    def test_resolve_respects_k_floor(self):
        params = HDIndexParams(alpha=64, beta=2, gamma=1)
        alpha, beta, gamma = params.resolve_filter_sizes(k=50)
        assert alpha >= 50 and beta >= 50 and gamma >= 50

    def test_resolve_orders_sizes(self):
        params = HDIndexParams(alpha=100, beta=400, gamma=900,
                               use_ptolemaic=True)
        alpha, beta, gamma = params.resolve_filter_sizes(k=1)
        assert alpha >= beta >= gamma

    def test_leaf_order_helper(self):
        params = HDIndexParams(hilbert_order=8, num_references=10)
        assert params.leaf_order(16) == 63


class TestRecommendedParams:
    def test_high_dimensional_doubles_trees(self):
        assert recommended_params(dim=512, n=10_000).num_trees == 16
        assert recommended_params(dim=128, n=10_000).num_trees == 8

    def test_alpha_scales_with_n(self):
        small = recommended_params(dim=128, n=1_000)
        large = recommended_params(dim=128, n=100_000)
        assert small.alpha <= large.alpha
        assert large.alpha <= 8192

    def test_tiny_dims_shrink_tree_count(self):
        params = recommended_params(dim=8, n=1_000)
        assert params.num_trees <= 4
