"""Documentation guards: doctest the public API, keep the docs present.

The runnable examples embedded in the public-API docstrings are executed
here (and again by the CI ``--doctest-modules`` step), so they cannot rot;
the architecture document and the README's backend matrix are asserted to
exist and to keep naming the things the code ships.
"""

import doctest
import importlib
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Public-API modules whose docstring examples must stay runnable.
DOCTEST_MODULES = (
    "repro.core.interface",
    "repro.core.params",
    "repro.core.persistence",
    "repro.core.hdindex",
    "repro.serve.service",
)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_public_api_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} lost its doctest examples"
    assert result.failed == 0, f"{module_name} doctests failed"


class TestArchitectureDoc:
    @pytest.fixture(scope="class")
    def text(self):
        path = REPO_ROOT / "docs" / "ARCHITECTURE.md"
        assert path.exists(), "docs/ARCHITECTURE.md is missing"
        return path.read_text()

    def test_covers_the_three_query_stages(self, text):
        for phrase in ("Hilbert", "triangular", "Ptolemaic", "refinement"):
            assert phrase.lower() in text.lower(), f"missing {phrase!r}"

    def test_covers_the_index_family(self, text):
        for name in ("HDIndex", "ShardRouter", "QueryService",
                     # deprecated shims stay documented for migration
                     "ParallelHDIndex", "ShardedHDIndex"):
            assert name in text, f"missing {name!r}"

    def test_covers_the_spec_axes(self, text):
        for name in ("IndexSpec", "Topology", "Execution", "repro.build",
                     "repro.open"):
            assert name in text, f"missing {name!r}"

    def test_covers_the_storage_backend_matrix(self, text):
        for name in ("memory", "file", "mmap", "MmapPageStore",
                     "BufferPool"):
            assert name in text, f"missing {name!r}"

    def test_points_into_the_source_tree(self, text):
        for path in ("src/repro/core/engine.py", "src/repro/storage",
                     "src/repro/serve"):
            assert path in text, f"missing pointer to {path}"


class TestReadme:
    @pytest.fixture(scope="class")
    def text(self):
        return (REPO_ROOT / "README.md").read_text()

    def test_backend_section_present(self, text):
        assert "Choosing a storage backend" in text
        for token in ('backend="mmap"', "larger-than-ram"):
            assert token in text or token in text.lower(), \
                f"missing {token!r}"

    def test_family_persistence_description_is_current(self, text):
        # PR 2 extended persistence to the whole family; the README must
        # not regress to the old HDIndex-only story.
        assert "load_index" in text and "manifest.json" in text

    def test_quickstart_uses_the_spec_api(self, text):
        # PR 5 redesigned the public API around IndexSpec; the README's
        # front door must lead with it.
        for token in ("IndexSpec", "repro.build", "repro.open",
                      "Topology", "Execution"):
            assert token in text, f"missing {token!r}"


class TestMigrationDoc:
    @pytest.fixture(scope="class")
    def text(self):
        path = REPO_ROOT / "docs" / "MIGRATION.md"
        assert path.exists(), "docs/MIGRATION.md is missing"
        return path.read_text()

    def test_every_deprecated_symbol_has_a_mapping(self, text):
        for name in ("ParallelHDIndex", "ProcessPoolHDIndex",
                     "ShardedHDIndex", 'mode="process"', "--mode"):
            assert name in text, f"missing migration entry for {name!r}"

    def test_names_the_replacements(self, text):
        for name in ("IndexSpec", "Topology", "Execution", "repro.build",
                     "repro.open", "--execution", "--spec"):
            assert name in text, f"missing replacement {name!r}"
