"""Tests for the runtime invariant sanitizer (repro.devtools.sanitize).

Each shim is driven both ways: legitimate use stays silent, a seeded
violation raises :class:`SanitizerError`.  The cross-check tests build
a real bulk-loaded B+-tree with an active packed mirror and then
corrupt one side.
"""

import numpy as np
import pytest

from repro.btree.tree import BPlusTree
from repro.devtools import sanitize
from repro.devtools.sanitize import SanitizerError
from repro.storage.buffer import BufferPool
from repro.storage.codecs import UIntCodec
from repro.storage.pages import InMemoryPageStore, MmapPageStore
from repro.storage.stats import IOStats


@pytest.fixture(autouse=True)
def _restore_sanitizer_state():
    """Leave the process-global sanitizer exactly as found, so these
    tests behave identically under a plain run and REPRO_SANITIZE=1."""
    was_installed = sanitize.installed()
    yield
    if was_installed:
        sanitize.install()
    else:
        sanitize.uninstall()


@pytest.fixture()
def sanitized():
    sanitize.install()
    yield


@pytest.fixture()
def unsanitized():
    sanitize.uninstall()
    yield


def build_tree(n=500, cache_pages=0):
    tree = BPlusTree(UIntCodec(8), UIntCodec(8), page_size=512,
                     cache_pages=cache_pages)
    entries = [(UIntCodec(8).encode(i * 3), UIntCodec(8).encode(i))
               for i in range(n)]
    tree.bulk_load(entries)
    return tree


class TestInstall:
    def test_install_uninstall_round_trip(self, unsanitized):
        from repro.storage.stats import IOStats as stats_cls
        original = stats_cls.__dict__["record_read"]
        sanitize.install()
        try:
            assert sanitize.installed()
            assert stats_cls.__dict__["record_read"] is not original
            sanitize.install()  # idempotent
        finally:
            sanitize.uninstall()
        assert not sanitize.installed()
        assert stats_cls.__dict__["record_read"] is original
        sanitize.uninstall()  # idempotent

    def test_install_from_env(self, unsanitized, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.install_from_env()
        assert not sanitize.installed()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.install_from_env()
        assert sanitize.installed()


class TestIOStatsBalance:
    def test_normal_accounting_is_silent(self, sanitized):
        stats = IOStats()
        stats.record_read(0)
        stats.record_read(1)
        stats.record_write(7)
        stats.record_read_many(np.array([2, 3, 9]))
        stats.reset()
        assert stats.page_reads == 0

    def test_corrupted_split_raises(self, sanitized):
        stats = IOStats()
        stats.record_read(0)
        stats.random_reads += 1  # drift the split behind the total
        with pytest.raises(SanitizerError, match="read split"):
            stats.record_read(1)

    def test_negative_counter_raises(self, sanitized):
        stats = IOStats()
        stats.cache_hits = -3
        with pytest.raises(SanitizerError, match="negative"):
            stats.record_read(0)


class TestBufferPoolAccounting:
    def test_lru_stays_within_capacity(self, sanitized):
        store = InMemoryPageStore(128)
        pool = BufferPool(store, capacity=2)
        for _ in range(4):
            pool.write(store.allocate(), b"x" * 128)
        for page_id in (0, 1, 2, 3, 1, 0):
            pool.read(page_id)
        assert pool.cached_pages() == 2

    def test_capacity_zero_must_stay_empty(self, sanitized):
        store = InMemoryPageStore(128)
        pool = BufferPool(store, capacity=0)
        page = store.allocate()
        pool.write(page, b"y" * 128)
        pool._cache[page] = b"y" * 128  # seeded violation
        with pytest.raises(SanitizerError, match="capacity=0"):
            pool.read(page)

    def test_short_cached_page_raises(self, sanitized):
        store = InMemoryPageStore(128)
        pool = BufferPool(store, capacity=4)
        page = store.allocate()
        pool.write(page, b"z" * 128)
        pool._cache[page] = b"short"  # seeded corruption
        with pytest.raises(SanitizerError, match="bytes"):
            pool.read(store.allocate())


class TestMmapWriteProtection:
    def test_page_matrix_views_are_read_only(self, sanitized, tmp_path):
        store = MmapPageStore(tmp_path / "pages.bin", page_size=256)
        page = store.allocate()
        store.write(page, b"a" * 256)
        matrix = store.page_matrix()
        assert not matrix.flags.writeable
        with pytest.raises(ValueError):
            matrix[0, 0] = 1
        # The data itself is still readable and correct.
        assert bytes(matrix[page]) == b"a" * 256
        store.close()

    def test_without_sanitizer_views_stay_writable(self, unsanitized,
                                                   tmp_path):
        store = MmapPageStore(tmp_path / "pages.bin", page_size=256)
        page = store.allocate()
        store.write(page, b"b" * 256)
        assert store.page_matrix().flags.writeable
        store.close()


class TestPackedNodeCrossCheck:
    def test_intact_tree_passes_and_accounts_once(self, sanitized):
        tree = build_tree()
        before = tree.stats.snapshot()
        entries = tree.nearest(UIntCodec(8).encode(300), 16)
        after = tree.stats.snapshot()
        assert len(entries) == 16
        # Parity verified in sandboxes; the caller-visible accounting is
        # exactly one packed traversal, not three.
        reads = after["page_reads"] - before["page_reads"]
        assert 0 < reads <= tree.height + 16

    def test_matches_unsanitized_answer_and_stats(self, unsanitized):
        key = UIntCodec(8).encode(777)
        plain_tree = build_tree()
        plain = plain_tree.nearest(key, 12)
        plain_stats = plain_tree.stats.snapshot()
        sanitize.install()
        try:
            checked_tree = build_tree()
            checked = checked_tree.nearest(key, 12)
            checked_stats = checked_tree.stats.snapshot()
        finally:
            sanitize.uninstall()
        assert [(bytes(k), bytes(v)) for k, v in plain] == \
            [(bytes(k), bytes(v)) for k, v in checked]
        assert plain_stats == checked_stats

    def test_corrupted_packed_values_raise(self, sanitized):
        tree = build_tree()
        packed = tree._packed
        packed.values_raw = packed.values_raw.copy()
        packed.values_raw[40] ^= 0xFF  # one entry's payload corrupted
        target = bytes(packed.keys_raw[40].tobytes())
        with pytest.raises(SanitizerError, match="answer divergence"):
            # count large enough to cover the corrupted position for
            # any nearby key
            tree.nearest(target, 8)

    def test_trace_divergence_raises(self, sanitized):
        tree = build_tree()
        packed = tree._packed
        original = type(packed).nearest_positions

        def noisy(self, key, count, stats):
            positions = original(self, key, count, stats)
            stats.record_read(10_000)  # phantom page read
            return positions

        type(packed).nearest_positions = noisy
        try:
            with pytest.raises(SanitizerError, match="trace divergence"):
                tree.nearest(UIntCodec(8).encode(42), 4)
        finally:
            type(packed).nearest_positions = original

    def test_node_only_tree_unaffected(self, sanitized):
        # cache_pages > 0 disables the packed mirror; the node path must
        # work untouched under the sanitizer.
        tree = build_tree(cache_pages=8)
        assert tree._active_packed() is None
        entries = tree.nearest(UIntCodec(8).encode(90), 5)
        assert len(entries) == 5


class TestEndToEndQueryParity:
    def test_small_index_queries_identically(self, sanitized):
        import repro
        from repro import HDIndexParams, IndexSpec

        rng = np.random.default_rng(5)
        data = rng.uniform(0, 100, size=(400, 12))
        queries = rng.uniform(0, 100, size=(5, 12))
        index = repro.build(
            IndexSpec(params=HDIndexParams(
                num_trees=3, num_references=4, alpha=64, gamma=16,
                domain=(0.0, 100.0), seed=1)),
            data)
        try:
            for query in queries:
                ids, dists = index.query(query, 5)
                assert ids.shape == (5,)
                assert np.all(np.isfinite(dists))
        finally:
            index.close()
