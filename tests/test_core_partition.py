"""Unit tests for dimension partitioning (Sec. 3.1 / 5.2.1)."""

import numpy as np
import pytest

from repro.core import contiguous_partition, make_partition, random_partition


class TestContiguous:
    def test_even_split(self):
        parts = contiguous_partition(128, 8)
        assert len(parts) == 8
        assert all(len(p) == 16 for p in parts)
        np.testing.assert_array_equal(np.concatenate(parts), np.arange(128))

    def test_uneven_split_spreads_remainder(self):
        parts = contiguous_partition(10, 3)
        sizes = [len(p) for p in parts]
        assert sizes == [4, 3, 3]
        np.testing.assert_array_equal(np.concatenate(parts), np.arange(10))

    def test_single_partition(self):
        parts = contiguous_partition(7, 1)
        assert len(parts) == 1
        np.testing.assert_array_equal(parts[0], np.arange(7))

    def test_one_dim_per_partition(self):
        parts = contiguous_partition(5, 5)
        assert [p.tolist() for p in parts] == [[0], [1], [2], [3], [4]]

    def test_blocks_are_contiguous(self):
        for parts in (contiguous_partition(37, 5), contiguous_partition(64, 8)):
            for block in parts:
                np.testing.assert_array_equal(
                    block, np.arange(block[0], block[-1] + 1))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            contiguous_partition(0, 1)
        with pytest.raises(ValueError):
            contiguous_partition(4, 5)
        with pytest.raises(ValueError):
            contiguous_partition(4, 0)


class TestRandom:
    def test_covers_all_dimensions_exactly_once(self):
        rng = np.random.default_rng(0)
        parts = random_partition(30, 4, rng)
        merged = np.concatenate(parts)
        assert sorted(merged.tolist()) == list(range(30))

    def test_sizes_near_equal(self):
        rng = np.random.default_rng(1)
        parts = random_partition(10, 3, rng)
        sizes = sorted(len(p) for p in parts)
        assert sizes == [3, 3, 4]

    def test_each_partition_sorted(self):
        rng = np.random.default_rng(2)
        for part in random_partition(20, 4, rng):
            assert np.all(np.diff(part) > 0)

    def test_seeded_reproducibility(self):
        a = random_partition(16, 4, np.random.default_rng(9))
        b = random_partition(16, 4, np.random.default_rng(9))
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_differs_from_contiguous_usually(self):
        rng = np.random.default_rng(3)
        random_parts = random_partition(64, 8, rng)
        contiguous_parts = contiguous_partition(64, 8)
        same = all(np.array_equal(a, b)
                   for a, b in zip(random_parts, contiguous_parts))
        assert not same


class TestDispatch:
    def test_contiguous_by_name(self):
        parts = make_partition(12, 3, "contiguous")
        assert [p.tolist() for p in parts] == [[0, 1, 2, 3], [4, 5, 6, 7],
                                               [8, 9, 10, 11]]

    def test_random_by_name(self):
        parts = make_partition(12, 3, "random", np.random.default_rng(0))
        assert sorted(np.concatenate(parts).tolist()) == list(range(12))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_partition(12, 3, "spiral")
