"""Filtered (predicate-pushdown) kNN: end-to-end correctness.

The load-bearing guarantee: with exhaustive budgets (α ≥ n), a filtered
query is *byte-identical* to the brute-force filter-then-kNN oracle —
mask the corpus with the predicate, scan the eligible descriptors as
stored, take the k nearest.  That must hold across every executor,
every storage backend, through WAL inserts and compaction, and over the
serve tier; and ineligible points must never reach the heap's
``gather`` (proven by instrumenting it and by poisoning ineligible
rows).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HDIndex, HDIndexParams, IndexSpec, open_index
from repro.core.engine import (
    SELECTIVITY_INFLATION_CAP,
    inflate_filter_sizes,
)
from repro.core.factory import build
from repro.core.spec import Execution
from repro.distance import euclidean_to_many, normalize_rows, top_k_smallest
from repro.meta import And, Eq, In, MetadataStore, Not, Range

DIM = 12
N = 240


def make_workload(seed=0, n=N):
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 40.0, size=(n, DIM))
    queries = rng.uniform(0.0, 40.0, size=(6, DIM))
    metadata = [{"label": int(i % 7), "score": float(i) / n,
                 "tag": "even" if i % 2 == 0 else "odd"}
                for i in range(n)]
    return data, queries, metadata


def exhaustive_params(n=N, **overrides):
    """Budgets that keep every eligible point in play end-to-end, so the
    pipeline must reproduce the oracle exactly."""
    defaults = dict(num_trees=2, num_references=4, hilbert_order=6,
                    alpha=n, beta=n, gamma=n, seed=5)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


def oracle(index, query, k, predicate):
    """Brute-force filter-then-kNN over the descriptors as stored."""
    eligible = np.nonzero(predicate.mask(index.metadata))[0]
    if eligible.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    stored = index.heap.gather(eligible)
    if index.params.metric == "angular":
        query = normalize_rows(np.asarray(query, dtype=np.float64)
                               [None, :])[0]
    exact = euclidean_to_many(query, stored)
    best = top_k_smallest(exact, min(k, eligible.size))
    return eligible[best], exact[best]


PREDICATES = [
    Eq("label", 3),
    In("label", (0, 5)),
    Range("score", low=0.25, high=0.75),
    And(Eq("tag", "even"), Range("score", high=0.5)),
    Or_pred := (Eq("label", 1) | Eq("label", 6)),
    Not(Eq("tag", "odd")),
]


class TestFilteredParity:
    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_byte_identical_to_oracle(self, predicate):
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        for query in queries:
            ids, dists = index.query(query, k=10, predicate=predicate)
            want_ids, want_dists = oracle(index, query, 10, predicate)
            np.testing.assert_array_equal(ids, want_ids)
            np.testing.assert_array_equal(dists, want_dists)

    def test_dict_form_equals_object_form(self):
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        predicate = And(Eq("tag", "even"), Range("score", low=0.2))
        a = index.query(queries[0], k=8, predicate=predicate)
        b = index.query(queries[0], k=8, predicate=predicate.to_dict())
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_batch_matches_single(self):
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        predicate = In("label", (2, 4, 6))
        batch_ids, batch_dists = index.query_batch(queries, k=5,
                                                   predicate=predicate)
        for row, query in enumerate(queries):
            ids, dists = index.query(query, k=5, predicate=predicate)
            np.testing.assert_array_equal(batch_ids[row], ids)
            np.testing.assert_array_equal(batch_dists[row], dists)

    @pytest.mark.parametrize("execution", ["sequential", "thread",
                                           "process"])
    @pytest.mark.parametrize("backend", ["file", "mmap"])
    def test_executor_backend_matrix(self, tmp_path, execution, backend):
        data, queries, metadata = make_workload()
        spec = IndexSpec(params=exhaustive_params(),
                         execution=Execution(kind=execution, workers=2),
                         backend=backend)
        index = build(spec, data, storage_dir=str(tmp_path),
                      metadata=metadata)
        try:
            predicate = And(Range("score", low=0.1, high=0.9),
                            Not(Eq("label", 0)))
            for query in queries[:3]:
                ids, dists = index.query(query, k=7,
                                         predicate=predicate)
                want_ids, want_dists = oracle(index, query, 7, predicate)
                np.testing.assert_array_equal(ids, want_ids)
                np.testing.assert_array_equal(dists, want_dists)
        finally:
            index.close()

    def test_memory_backend_in_spec_build(self):
        data, queries, metadata = make_workload()
        index = build(IndexSpec(params=exhaustive_params()), data,
                      metadata=metadata)
        predicate = Eq("label", 5)
        ids, _ = index.query(queries[0], k=4, predicate=predicate)
        want_ids, _ = oracle(index, queries[0], 4, predicate)
        np.testing.assert_array_equal(ids, want_ids)

    @given(seed=st.integers(0, 10**6), label=st.integers(0, 6),
           k=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_parity_property(self, seed, label, k):
        data, queries, metadata = make_workload(seed=seed, n=120)
        index = HDIndex(exhaustive_params(n=120, seed=seed % 50))
        index.build(data, metadata=metadata)
        predicate = Eq("label", label)
        ids, dists = index.query(queries[0], k=k, predicate=predicate)
        want_ids, want_dists = oracle(index, queries[0], k, predicate)
        np.testing.assert_array_equal(ids, want_ids)
        np.testing.assert_array_equal(dists, want_dists)

    def test_empty_selectivity_returns_empty(self):
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        ids, dists = index.query(queries[0], k=5,
                                 predicate=Eq("label", 99))
        assert ids.size == 0 and dists.size == 0
        stats = index.last_query_stats()
        assert stats.extra["selectivity"] == 0.0


class TestPushdownProof:
    def test_ineligible_never_gathered(self):
        """Instrument the heap: every id fetched during a filtered query
        must be predicate-eligible — pushdown, not post-filtering."""
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        predicate = Eq("label", 3)
        eligible = set(
            np.nonzero(predicate.mask(index.metadata))[0].tolist())

        gathered = []
        original = index.heap.gather

        def recording_gather(ids):
            gathered.extend(np.asarray(ids).tolist())
            return original(ids)

        index.heap.gather = recording_gather
        try:
            for query in queries:
                index.query(query, k=10, predicate=predicate)
        finally:
            index.heap.gather = original
        assert gathered, "rerank never touched the heap"
        assert set(gathered) <= eligible

    def test_poisoned_ineligible_rows_do_not_leak(self):
        """Overwrite every ineligible descriptor with a point sitting on
        the query: if any ineligible row reached the distance kernels,
        it would win the top-1 slot instantly."""
        data, queries, metadata = make_workload()
        predicate = Eq("tag", "even")
        poisoned = data.copy()
        for i in range(N):
            if metadata[i]["tag"] != "even":
                poisoned[i] = queries[0]  # exact hit: distance 0
        index = HDIndex(exhaustive_params())
        index.build(poisoned, metadata=metadata)
        ids, dists = index.query(queries[0], k=10, predicate=predicate)
        labels = [metadata[int(i)]["tag"] for i in ids]
        assert labels == ["even"] * len(ids)
        want_ids, want_dists = oracle(index, queries[0], 10, predicate)
        np.testing.assert_array_equal(ids, want_ids)
        np.testing.assert_array_equal(dists, want_dists)


class TestSelectivityInflation:
    def test_inflate_filter_sizes(self):
        alpha, beta, gamma = inflate_filter_sizes(64, 32, 16, 0.5)
        assert (alpha, beta, gamma) == (128, 64, 32)
        # Tiny selectivity hits the cap, not a huge multiplier.
        capped = inflate_filter_sizes(64, 32, 16, 1e-9)
        assert capped == (64 * SELECTIVITY_INFLATION_CAP,
                          32 * SELECTIVITY_INFLATION_CAP,
                          16 * SELECTIVITY_INFLATION_CAP)
        # Unfiltered stays untouched.
        assert inflate_filter_sizes(64, 32, 16, 1.0) == (64, 32, 16)

    def test_stats_report_selectivity(self):
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        index.query(queries[0], k=3, predicate=Eq("tag", "even"))
        stats = index.last_query_stats()
        assert stats.extra["selectivity"] == pytest.approx(0.5)


class TestFilteredValidation:
    def test_predicate_without_metadata(self):
        data, queries, _ = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data)
        with pytest.raises(ValueError, match="without metadata"):
            index.query(queries[0], k=3, predicate=Eq("label", 1))

    def test_unknown_column_fails_before_scan(self):
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        with pytest.raises(ValueError, match="unknown metadata column"):
            index.query(queries[0], k=3, predicate=Eq("missing", 1))

    def test_metadata_count_mismatch(self):
        data, _, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        with pytest.raises(ValueError):
            index.build(data, metadata=metadata[:-1])

    def test_insert_metadata_contract(self):
        data, _, metadata = make_workload()
        with_meta = HDIndex(exhaustive_params())
        with_meta.build(data, metadata=metadata)
        with pytest.raises(ValueError, match="requires a metadata dict"):
            with_meta.insert(data[0])
        without = HDIndex(exhaustive_params())
        without.build(data)
        with pytest.raises(ValueError, match="built without it"):
            without.insert(data[0], metadata={"label": 1})


class TestFilteredPersistence:
    @pytest.mark.parametrize("backend", ["file", "mmap"])
    def test_metadata_survives_save_load(self, tmp_path, backend):
        data, queries, metadata = make_workload()
        spec = IndexSpec(params=exhaustive_params(), backend=backend)
        index = build(spec, data, storage_dir=str(tmp_path),
                      metadata=metadata)
        predicate = Range("score", low=0.4)
        want = index.query(queries[0], k=6, predicate=predicate)
        index.close()
        with open_index(str(tmp_path)) as reopened:
            assert isinstance(reopened.metadata, MetadataStore)
            got = reopened.query(queries[0], k=6, predicate=predicate)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])

    def test_metadata_free_snapshot_has_no_sidecar(self, tmp_path):
        data, _, _ = make_workload()
        spec = IndexSpec(params=exhaustive_params(), backend="file")
        index = build(spec, data, storage_dir=str(tmp_path))
        index.close()
        assert not (tmp_path / "metadata.packed").exists()
        with open_index(str(tmp_path)) as reopened:
            assert reopened.metadata is None


class TestFilteredWal:
    def wal_spec(self, n=N):
        return IndexSpec(params=exhaustive_params(n=n), backend="file",
                         execution=Execution(kind="sequential", wal=True))

    def test_wal_inserts_filterable_and_recovered(self, tmp_path):
        data, queries, metadata = make_workload()
        index = build(self.wal_spec(), data, storage_dir=str(tmp_path),
                      metadata=metadata)
        fresh = np.asarray(queries[1])
        new_id = index.insert(fresh, metadata={"label": 3,
                                               "score": 0.33,
                                               "tag": "even"})
        predicate = Eq("label", 3)
        ids, _ = index.query(fresh, k=1, predicate=predicate)
        assert ids[0] == new_id
        # The delta row is invisible to a non-matching predicate.
        miss, _ = index.query(fresh, k=1, predicate=Eq("label", 4))
        assert new_id not in miss
        index.close()
        # Crash-recovery replay rebuilds the delta row's metadata.
        with open_index(str(tmp_path)) as recovered:
            ids, _ = recovered.query(fresh, k=1, predicate=predicate)
            assert ids[0] == new_id

    def test_compaction_folds_metadata(self, tmp_path):
        data, queries, metadata = make_workload()
        index = build(self.wal_spec(), data, storage_dir=str(tmp_path),
                      metadata=metadata)
        fresh = np.asarray(queries[2])
        new_id = index.insert(fresh, metadata={"label": 5, "score": 0.5,
                                               "tag": "odd"})
        index.compact()
        assert index.metadata.count == N + 1
        assert index.metadata.row(new_id)["label"] == 5
        ids, _ = index.query(fresh, k=1, predicate=Eq("label", 5))
        assert ids[0] == new_id
        index.close()
        with open_index(str(tmp_path)) as reopened:
            ids, _ = reopened.query(fresh, k=1, predicate=Eq("label", 5))
            assert ids[0] == new_id

    def test_parity_through_wal_interleavings(self, tmp_path):
        """Insert → query → compact → insert → query: parity with the
        oracle (base store + delta rows) at every step."""
        data, queries, metadata = make_workload(n=150)
        index = build(self.wal_spec(n=150), data,
                      storage_dir=str(tmp_path),
                      metadata=metadata)
        rng = np.random.default_rng(11)
        predicate = Eq("tag", "even")

        def check():
            query = queries[0]
            ids, dists = index.query(query, k=9, predicate=predicate)
            # Oracle over base + delta: compact-free reference.
            rows = [index.metadata.row(i)
                    for i in range(index.metadata.count)]
            delta = index._delta
            rows += delta.metadata_rows() if delta is not None else []
            eligible = np.asarray([predicate.matches(r) for r in rows])
            vectors = index.heap.gather(
                np.arange(index.metadata.count))
            delta_records = delta.records() if delta is not None else []
            if delta_records:
                vectors = np.vstack(
                    [vectors,
                     np.asarray([r[1] for r in delta_records],
                                dtype=vectors.dtype)])
            keep = np.nonzero(eligible)[0]
            exact = euclidean_to_many(query, vectors[keep])
            best = top_k_smallest(exact, min(9, keep.size))
            np.testing.assert_array_equal(ids, keep[best])
            np.testing.assert_array_equal(dists, exact[best])

        check()
        for step in range(4):
            vector = rng.uniform(0.0, 40.0, size=DIM)
            index.insert(vector, metadata={
                "label": int(step % 7), "score": 0.9,
                "tag": "even" if step % 2 == 0 else "odd"})
            check()
            if step == 1:
                index.compact()
                check()
        index.close()


class TestAngularMetric:
    def test_angular_matches_normalized_euclidean_oracle(self):
        data, queries, _ = make_workload()
        ndata = normalize_rows(data)
        angular = HDIndex(exhaustive_params(metric="angular"))
        angular.build(ndata)
        euclid = HDIndex(exhaustive_params())
        euclid.build(ndata)
        for query in queries:
            nquery = normalize_rows(query[None, :])[0]
            a_ids, a_dists = angular.query(query, k=10)
            e_ids, e_dists = euclid.query(nquery, k=10)
            np.testing.assert_array_equal(a_ids, e_ids)
            np.testing.assert_array_equal(a_dists, e_dists)

    def test_angular_requires_normalized_build(self):
        data, _, _ = make_workload()
        index = HDIndex(exhaustive_params(metric="angular"))
        with pytest.raises(ValueError, match="unit-normalised"):
            index.build(data)

    def test_angular_filtered_parity(self):
        data, queries, metadata = make_workload()
        ndata = normalize_rows(data)
        index = HDIndex(exhaustive_params(metric="angular"))
        index.build(ndata, metadata=metadata)
        predicate = In("label", (1, 3, 5))
        for query in queries[:3]:
            ids, dists = index.query(query, k=8, predicate=predicate)
            want_ids, want_dists = oracle(index, query, 8, predicate)
            np.testing.assert_array_equal(ids, want_ids)
            np.testing.assert_array_equal(dists, want_dists)

    def test_angular_survives_persistence(self, tmp_path):
        data, queries, _ = make_workload()
        ndata = normalize_rows(data)
        spec = IndexSpec(params=exhaustive_params(metric="angular"),
                         backend="file")
        index = build(spec, ndata, storage_dir=str(tmp_path))
        want = index.query(queries[0], k=5)
        index.close()
        with open_index(str(tmp_path)) as reopened:
            assert reopened.params.metric == "angular"
            got = reopened.query(queries[0], k=5)
            np.testing.assert_array_equal(got[0], want[0])

    def test_angular_insert_requires_normalized(self):
        data, _, _ = make_workload()
        index = HDIndex(exhaustive_params(metric="angular"))
        index.build(normalize_rows(data))
        with pytest.raises(ValueError, match="unit-normalised"):
            index.insert(np.full(DIM, 3.0))


class TestShardedFiltered:
    def test_sharded_filtered_parity(self):
        from repro.core.spec import Topology
        data, queries, metadata = make_workload()
        spec = IndexSpec(params=exhaustive_params(),
                         topology=Topology(shards=3))
        router = build(spec, data, metadata=metadata)
        plain = HDIndex(exhaustive_params())
        plain.build(data, metadata=metadata)
        predicate = And(Eq("tag", "odd"), Range("score", low=0.2))
        for query in queries[:3]:
            r_ids, r_dists = router.query(query, k=6,
                                          predicate=predicate)
            want_ids, want_dists = oracle(plain, query, 6, predicate)
            np.testing.assert_array_equal(np.sort(r_dists),
                                          np.sort(want_dists))
            np.testing.assert_array_equal(r_ids, want_ids)


class TestServeFiltered:
    def test_service_accepts_predicate_objects_and_dicts(self):
        from repro.serve import QueryService, ServiceConfig
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        predicate = Eq("label", 2)
        want_ids, want_dists = oracle(index, queries[0], 5, predicate)
        with QueryService(index, ServiceConfig(max_batch=4)) as service:
            ids, dists = service.submit(queries[0], 5,
                                        predicate=predicate).result(10)
            np.testing.assert_array_equal(ids, want_ids)
            np.testing.assert_array_equal(dists, want_dists)
            ids2, _ = service.submit(
                queries[0], 5, predicate=predicate.to_dict()).result(10)
            np.testing.assert_array_equal(ids2, want_ids)

    def test_cached_filtered_results_keyed_by_predicate(self):
        from repro.serve import QueryService, ServiceConfig
        data, queries, metadata = make_workload()
        index = HDIndex(exhaustive_params())
        index.build(data, metadata=metadata)
        config = ServiceConfig(max_batch=2, cache_size=16)
        with QueryService(index, config) as service:
            a1 = service.submit(queries[0], 5,
                                predicate=Eq("label", 1)).result(10)
            b1 = service.submit(queries[0], 5,
                                predicate=Eq("label", 2)).result(10)
            a2 = service.submit(queries[0], 5,
                                predicate=Eq("label", 1)
                                .to_dict()).result(10)
            assert not np.array_equal(a1[0], b1[0])
            np.testing.assert_array_equal(a1[0], a2[0])
            assert service.stats().cache_hits >= 1

    def test_predicate_crosses_wire_protocol(self):
        from repro.serve.protocol import decode_body, encode_frame, \
            query_request
        predicate = And(Eq("label", 1), Not(Eq("tag", "odd")))
        frame = encode_frame(query_request(
            7, np.zeros(DIM), 5, overrides={"predicate": predicate}))
        message = decode_body(frame[4:])
        assert message["overrides"]["predicate"] == predicate.to_dict()
