"""End-to-end online-update acceptance sweep.

The PR's headline contract, in one test: a sustained interleaved
workload — over a thousand inserts plus deletes through the WAL, with
concurrent readers hammering the index the whole time — across two
compactions and a process-execution hot swap, must

* return **byte-identical** neighbours to an index freshly built from
  the same stream in one shot (exhaustive regime: α ≥ n, γ = α),
* fail **zero** queries,
* and never restart a worker pool or rewrite the snapshot on the write
  path (the O(n) resync this subsystem replaces).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import (
    Execution,
    HDIndex,
    HDIndexParams,
    IndexSpec,
    SnapshotWorkerPool,
    build,
)

DIM = 4
BASE_N = 400
INSERTS = 1000
DELETE_EVERY = 9          # one delete per nine inserts -> 111 deletes
COMPACT_AT = (400, 800)   # two compactions mid-stream
WAIT = 120.0


def _params(directory=None):
    total = BASE_N + INSERTS
    return HDIndexParams(num_trees=2, hilbert_order=6, num_references=4,
                         alpha=2 * total, gamma=2 * total,
                         use_ptolemaic=False, domain=(0.0, 100.0), seed=13,
                         storage_dir=directory)


def test_sustained_online_updates_acceptance(tmp_path, monkeypatch):
    rng = np.random.default_rng(99)
    base = rng.uniform(0.0, 100.0, size=(BASE_N, DIM))
    stream = rng.uniform(0.0, 100.0, size=(INSERTS, DIM))
    probe = base[rng.choice(BASE_N, 8, replace=False)]

    index = build(
        IndexSpec(params=_params(str(tmp_path / "snap")),
                  execution=Execution(kind="process", workers=2)),
        base, storage_dir=str(tmp_path / "snap"))
    index._wal_fsync = "batch"
    assert index._wal_active()

    resets: list[object] = []
    monkeypatch.setattr(SnapshotWorkerPool, "reset",
                        lambda self: resets.append(self))
    import repro.core.persistence as persistence
    saves: list[object] = []
    real_save = persistence.save_index
    monkeypatch.setattr(
        persistence, "save_index",
        lambda *a, **kw: saves.append(a) or real_save(*a, **kw))

    errors: list[Exception] = []
    answered = [0]
    stop = threading.Event()

    def reader(offset):
        reader_rng = np.random.default_rng(1000 + offset)
        while not stop.is_set():
            query = probe[reader_rng.integers(0, len(probe))]
            try:
                ids, dists = index.query(query, 5)
                assert len(ids) == 5
                answered[0] += 1
            except Exception as error:  # pragma: no cover - fails test
                errors.append(error)
                return

    readers = [threading.Thread(target=reader, args=(r,)) for r in range(2)]
    for thread in readers:
        thread.start()

    live_pool = index._engine.executor.pool
    deleted: set[int] = set()
    generations = []
    try:
        for position, vector in enumerate(stream):
            assigned = index.insert(vector)
            assert assigned == BASE_N + position
            if position % DELETE_EVERY == 0:
                victim = int(rng.integers(0, BASE_N + position + 1))
                if victim not in deleted:
                    index.delete(victim)
                    deleted.add(victim)
            if position + 1 in COMPACT_AT:
                # The pure write path up to here restarted nothing.
                assert resets == []
                generations.append(index.compact())
                # Compaction closes throwaway (never-forked) executors
                # from its snapshot reload — but never the serving pool.
                assert all(pool is not live_pool for pool in resets)
                resets.clear()
    finally:
        stop.set()
        for thread in readers:
            thread.join(WAIT)

    assert errors == []
    assert answered[0] > 0, "readers never got a query through"
    assert generations == [1, 2]
    assert index.generation == 2
    assert resets == []  # tail of the stream: write path, no restarts
    # The write path never re-persisted the serving snapshot; the only
    # saves are the two compactions writing *new* generation directories.
    compaction_saves = [args for args in saves
                        if "gen-" in str(args[1])]
    assert len(saves) == len(compaction_saves) == 2
    assert not index._snapshot_dirty

    # Byte-identical parity with a one-shot oracle over the full stream.
    oracle = HDIndex(_params())
    oracle.build(np.vstack([base, stream]))
    for victim in deleted:
        oracle.delete(victim)
    try:
        for query in probe:
            ids, dists = index.query(query, 10)
            oracle_ids, oracle_dists = oracle.query(query, 10)
            np.testing.assert_array_equal(ids, oracle_ids)
            np.testing.assert_array_equal(dists, oracle_dists)
            assert not (set(int(i) for i in ids) & deleted)
    finally:
        oracle.close()
        monkeypatch.undo()
        index.close()
