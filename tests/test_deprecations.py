"""Deprecation policy for the pre-IndexSpec API.

The old per-combination classes and the string-typed service ``mode=``
keyword must (a) keep working — existing user code and snapshots cannot
break — and (b) emit ``DeprecationWarning`` pointing at the spec
equivalent.  The CI deprecation job runs tier-1 with
``-W error::DeprecationWarning``; only the tests here (and the legacy
round-trip suite) opt back in via explicit expectations, so any *internal*
code path that still touches a shim fails the build.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    HDIndexParams,
    ParallelHDIndex,
    ProcessPoolHDIndex,
    QueryService,
    ShardedHDIndex,
)
from repro.core import ShardRouter, ThreadedExecutor
from repro.core.engine import ProcessExecutor

DIM = 8
K = 3


def _params(**overrides):
    defaults = dict(num_trees=2, hilbert_order=5, num_references=3,
                    alpha=16, gamma=8, domain=(0.0, 10.0), seed=0)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


def _data(n=64):
    rng = np.random.default_rng(7)
    return np.clip(rng.uniform(0.0, 10.0, size=(n, DIM)), 0.0, 10.0)


class TestShimsWarnButWork:
    def test_parallel_shim(self):
        data = _data()
        with pytest.warns(DeprecationWarning, match="ParallelHDIndex"):
            index = ParallelHDIndex(_params(), num_workers=2)
        assert isinstance(index.executor, ThreadedExecutor)
        index.build(data)
        ids, dists = index.query(data[3], K)
        assert ids[0] == 3 and dists[0] < 1e-3
        index.close()

    def test_sharded_shim(self):
        data = _data()
        with pytest.warns(DeprecationWarning, match="ShardedHDIndex"):
            index = ShardedHDIndex(_params(), num_shards=2)
        assert isinstance(index, ShardRouter)
        assert index.num_shards == 2
        index.build(data)
        ids, _ = index.query(data[5], K)
        assert ids[0] == 5
        index.close()

    def test_process_shim(self, tmp_path):
        data = _data()
        with pytest.warns(DeprecationWarning, match="ProcessPoolHDIndex"):
            index = ProcessPoolHDIndex(_params(storage_dir=str(tmp_path)),
                                       num_workers=1)
        assert isinstance(index.executor, ProcessExecutor)
        index.build(data)
        ids, _ = index.query(data[4], K)
        assert ids[0] == 4
        index.close()

    def test_process_shim_from_snapshot_warns_and_rejects_sharded(
            self, tmp_path):
        data = _data()
        plain_dir = tmp_path / "plain"
        index = repro.build(repro.IndexSpec(params=_params()), data,
                            storage_dir=plain_dir)
        expected = index.query(data[2], K)
        index.close()
        with pytest.warns(DeprecationWarning, match="from_snapshot"):
            reopened = ProcessPoolHDIndex.from_snapshot(plain_dir,
                                                        num_workers=1)
        try:
            np.testing.assert_array_equal(reopened.query(data[2], K)[0],
                                          expected[0])
        finally:
            reopened.close()

        sharded_dir = tmp_path / "sharded"
        repro.build(repro.IndexSpec(params=_params(),
                                    topology=repro.Topology(shards=2)),
                    data, storage_dir=sharded_dir).close()
        from repro.core import PersistenceError
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PersistenceError, match="sharded"):
                ProcessPoolHDIndex.from_snapshot(sharded_dir)

    def test_shim_validation_still_first_class(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="num_workers"):
                ParallelHDIndex(_params(), num_workers=0)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="storage_dir"):
                ProcessPoolHDIndex(_params())


class TestServiceModeDeprecation:
    def test_mode_thread_warns_and_serves(self):
        data = _data()
        index = repro.HDIndex(_params())
        index.build(data)
        with pytest.warns(DeprecationWarning, match="mode"):
            service = QueryService(index, mode="thread", max_batch=4,
                                   max_wait_ms=0.0)
        with service:
            ids, _ = service.query(data[1], K, timeout=30.0)
        assert ids[0] == 1
        index.close()

    def test_mode_process_warns_and_serves(self, tmp_path):
        data = _data()
        index = repro.build(repro.IndexSpec(params=_params()), data,
                            storage_dir=tmp_path)
        expected = index.query(data[2], K)
        index.close()
        with pytest.warns(DeprecationWarning, match="mode"):
            service = QueryService.from_snapshot(tmp_path, mode="process",
                                                 workers=1, max_batch=4)
        with service:
            assert service.mode == "process"
            ids, _ = service.query(data[2], K, timeout=30.0)
        np.testing.assert_array_equal(ids, expected[0])

    def test_mode_and_execution_together_rejected(self):
        data = _data()
        index = repro.HDIndex(_params())
        index.build(data)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                QueryService(index, mode="thread", execution="thread")
        index.close()

    def test_unknown_mode_still_rejected(self):
        index = repro.HDIndex(_params())
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="mode"):
                QueryService(index, mode="fiber")


class TestNoWarningsOnTheNewPath:
    def test_spec_api_is_warning_free(self, tmp_path, recwarn):
        import warnings
        data = _data()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            index = repro.build(
                repro.IndexSpec(params=_params(),
                                topology=repro.Topology(shards=2)),
                data, storage_dir=tmp_path)
            index.query(data[0], K)
            index.close()
            repro.open(tmp_path).close()
            loaded = repro.load_index(tmp_path)
            loaded.query_batch(data[:3], K)
            loaded.close()
