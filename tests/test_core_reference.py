"""Unit tests for reference object selection (Sec. 3.3)."""

import numpy as np
import pytest

from repro.core import (
    ReferenceSet,
    estimate_dmax,
    select_random,
    select_references,
    select_sss,
    select_sss_dyn,
)
from repro.distance import pairwise_euclidean


@pytest.fixture(scope="module")
def spread_data():
    rng = np.random.default_rng(42)
    centers = rng.uniform(0.0, 100.0, size=(8, 12))
    return np.vstack([
        center + rng.normal(0.0, 2.0, size=(40, 12)) for center in centers])


class TestDmax:
    def test_lower_bounds_and_never_exceeds_true_diameter(self, spread_data):
        rng = np.random.default_rng(0)
        estimate = estimate_dmax(spread_data, rng)
        true_dmax = pairwise_euclidean(spread_data, spread_data).max()
        assert 0.5 * true_dmax <= estimate <= true_dmax + 1e-9

    def test_degenerate_identical_points(self):
        data = np.ones((10, 4))
        assert estimate_dmax(data, np.random.default_rng(0)) == 0.0


class TestSelection:
    def test_random_selects_m_distinct(self, spread_data):
        chosen = select_random(spread_data, 10, np.random.default_rng(1))
        assert len(chosen) == 10
        assert len(set(chosen.tolist())) == 10

    def test_sss_selects_m_well_separated(self, spread_data):
        chosen = select_sss(spread_data, 6, np.random.default_rng(2),
                            fraction=0.3)
        assert len(chosen) == 6
        refs = spread_data[chosen]
        distances = pairwise_euclidean(refs, refs)
        off_diagonal = distances[~np.eye(6, dtype=bool)]
        # SSS guarantees pairwise separation above the threshold used.
        assert off_diagonal.min() > 0.0

    def test_sss_separation_beats_random_on_average(self, spread_data):
        rng = np.random.default_rng(3)
        sss_refs = spread_data[select_sss(spread_data, 8, rng)]
        random_refs = spread_data[select_random(spread_data, 8, rng)]

        def min_separation(refs):
            distances = pairwise_euclidean(refs, refs)
            return distances[~np.eye(len(refs), dtype=bool)].min()

        assert min_separation(sss_refs) >= min_separation(random_refs) * 0.5

    def test_sss_fills_m_even_with_tight_threshold(self, spread_data):
        # With a huge fraction, no pair qualifies — relaxation must kick in.
        chosen = select_sss(spread_data, 12, np.random.default_rng(4),
                            fraction=0.99)
        assert len(chosen) == 12
        assert len(set(chosen.tolist())) == 12

    def test_sss_degenerate_identical_points(self):
        data = np.ones((20, 4))
        chosen = select_sss(data, 5, np.random.default_rng(5))
        assert len(chosen) == 5

    def test_sss_dyn_selects_m(self, spread_data):
        chosen = select_sss_dyn(spread_data, 6, np.random.default_rng(6))
        assert len(chosen) == 6
        assert len(set(chosen.tolist())) == 6

    def test_dispatch(self, spread_data):
        rng = np.random.default_rng(7)
        for method in ("random", "sss", "sss-dyn"):
            chosen = select_references(spread_data, 4, method, rng)
            assert len(chosen) == 4
        with pytest.raises(ValueError):
            select_references(spread_data, 4, "clustered", rng)

    def test_m_validation(self, spread_data):
        with pytest.raises(ValueError):
            select_random(spread_data, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            select_random(spread_data, len(spread_data) + 1,
                          np.random.default_rng(0))


class TestReferenceSet:
    def test_select_and_matrices(self, spread_data):
        refs = ReferenceSet.select(spread_data, 5, "sss",
                                   np.random.default_rng(8))
        assert refs.size == 5
        assert refs.vectors.shape == (5, spread_data.shape[1])
        assert refs.ref_ref.shape == (5, 5)
        np.testing.assert_allclose(np.diag(refs.ref_ref), 0.0, atol=1e-9)

    def test_distances_from_matches_pairwise(self, spread_data):
        refs = ReferenceSet.select(spread_data, 5, "random",
                                   np.random.default_rng(9))
        points = spread_data[:7]
        np.testing.assert_allclose(
            refs.distances_from(points),
            pairwise_euclidean(points, refs.vectors), atol=1e-9)

    def test_distances_from_single_point(self, spread_data):
        refs = ReferenceSet.select(spread_data, 3, "random",
                                   np.random.default_rng(10))
        out = refs.distances_from(spread_data[0])
        assert out.shape == (1, 3)

    def test_memory_accounting_positive(self, spread_data):
        refs = ReferenceSet.select(spread_data, 5, "random",
                                   np.random.default_rng(11))
        assert refs.memory_bytes() >= refs.vectors.nbytes + refs.ref_ref.nbytes

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ReferenceSet(np.zeros(5))
