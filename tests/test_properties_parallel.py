"""Property-based parity across execution tiers and storage backends.

The load-bearing invariant of the whole execution stack: for the *same
build*, answers are a pure function of (data, params, query, k) — never of
the executor (sequential / threaded / process), the storage backend
(memory / file / mmap), a snapshot round-trip, or batch composition.
Seeded randomized trials drive that invariant harder than the hand-picked
cases in ``test_backend_parity.py``: hypothesis chooses the query points,
``k`` and the per-call filter overrides; the sequential index is the
oracle; every other tier must match it byte for byte.

The sharded index is a *different build* (per-shard reference sets), so it
is not compared against the sequential oracle; its property is parity with
itself across backends and snapshot reloads.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    Execution,
    HDIndex,
    HDIndexParams,
    ShardRouter,
    ThreadedExecutor,
    load_index,
    open_index,
    save_index,
)

DIM = 16
N = 360
MAX_K = 12


def _params(**overrides):
    defaults = dict(num_trees=4, hilbert_order=6, num_references=5,
                    alpha=48, gamma=12, domain=(-4.0, 4.0), seed=9)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


def _data():
    rng = np.random.default_rng(42)
    centers = rng.uniform(-3.0, 3.0, size=(5, DIM))
    data = np.vstack([center + rng.normal(0.0, 0.4, size=(72, DIM))
                      for center in centers])
    return np.clip(data, -4.0, 4.0)


def _queries(seed: int, count: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.clip(rng.normal(0.0, 2.0, size=(count, DIM)), -4.0, 4.0)


@pytest.fixture(scope="module")
def tiers(tmp_path_factory):
    """One build, four execution tiers over it (the process tier reads the
    persisted snapshot of the very same build)."""
    data = _data()
    snapshot = tmp_path_factory.mktemp("prop-snap")
    sequential = HDIndex(_params(storage_dir=str(snapshot)))
    sequential.build(data)
    save_index(sequential, snapshot)

    threaded = HDIndex(_params(), executor=ThreadedExecutor(3))
    threaded.build(data)

    process = open_index(snapshot,
                         execution=Execution(kind="process", workers=2))

    yield {"data": data, "snapshot": snapshot, "sequential": sequential,
           "threaded": threaded, "process": process}
    sequential.close()
    threaded.close()
    process.close()


def _assert_rows_equal(got, oracle, label):
    np.testing.assert_array_equal(got[0], oracle[0],
                                  err_msg=f"{label}: ids differ")
    np.testing.assert_array_equal(got[1], oracle[1],
                                  err_msg=f"{label}: distances differ")


class TestExecutorParity:
    """sequential == threaded == process, single and batched, under
    randomized queries, k and filter overrides."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 2**20), k=st.integers(1, MAX_K))
    def test_single_query_parity(self, tiers, seed, k):
        queries = _queries(seed)
        for q in queries:
            oracle = tiers["sequential"].query(q, k)
            _assert_rows_equal(tiers["threaded"].query(q, k), oracle,
                              f"threaded seed={seed} k={k}")
            _assert_rows_equal(tiers["process"].query(q, k), oracle,
                              f"process seed={seed} k={k}")

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 2**20), k=st.integers(1, MAX_K),
           batch=st.integers(1, 6))
    def test_batch_rows_equal_single_queries(self, tiers, seed, k, batch):
        """query_batch row r == query(points[r]) on every tier — batch
        composition must never leak into an answer."""
        points = _queries(seed, count=batch)
        for name in ("sequential", "threaded", "process"):
            index = tiers[name]
            ids, dists = index.query_batch(points, k)
            assert ids.shape == (batch, k) and dists.shape == (batch, k)
            for row in range(batch):
                si, sd = index.query(points[row], k)
                np.testing.assert_array_equal(
                    ids[row, :si.shape[0]], si,
                    err_msg=f"{name} row {row} seed={seed}")
                np.testing.assert_array_equal(
                    dists[row, :sd.shape[0]], sd,
                    err_msg=f"{name} row {row} seed={seed}")
                assert np.all(ids[row, si.shape[0]:] == -1)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 2**20),
           alpha=st.integers(16, 96),
           use_ptolemaic=st.booleans())
    def test_override_forwarding_parity(self, tiers, seed, alpha,
                                        use_ptolemaic):
        """Per-call α/γ/Ptolemaic overrides reach worker processes and
        thread pools identically."""
        q = _queries(seed, count=1)[0]
        gamma = max(1, alpha // 4)
        oracle = tiers["sequential"].query(
            q, 5, alpha=alpha, gamma=gamma, use_ptolemaic=use_ptolemaic)
        for name in ("threaded", "process"):
            got = tiers[name].query(q, 5, alpha=alpha, gamma=gamma,
                                    use_ptolemaic=use_ptolemaic)
            _assert_rows_equal(got, oracle,
                               f"{name} alpha={alpha} ptol={use_ptolemaic}")


class TestStatsParity:
    """Process-mode QueryStats must charge exactly what the sequential
    path charges: total page reads (parent + folded worker deltas),
    candidates, and distance computations — the reference matmul counted
    once, never per worker group."""

    @pytest.mark.parametrize("trial_seed", [17, 29])
    def test_totals_match_sequential(self, tiers, trial_seed):
        queries = _queries(trial_seed, count=4)

        def totals(stats):
            return (stats.page_reads, stats.candidates,
                    stats.distance_computations)

        for q in queries:
            tiers["sequential"].query(q, 6)
            tiers["process"].query(q, 6)
            assert totals(tiers["process"].last_query_stats()) == \
                totals(tiers["sequential"].last_query_stats())
        tiers["sequential"].query_batch(queries, 6)
        tiers["process"].query_batch(queries, 6)
        assert totals(tiers["process"].last_query_stats()) == \
            totals(tiers["sequential"].last_query_stats())
        assert tiers["process"].last_query_stats().extra["workers"] == 2


class TestBackendParityRandomized:
    """memory / file / mmap loads of one snapshot answer identically under
    randomized queries (seeded trials, extending the fixed-case suite)."""

    @pytest.mark.parametrize("trial_seed", [101, 202, 303])
    def test_load_backend_parity(self, tiers, trial_seed):
        queries = _queries(trial_seed, count=4)
        oracle = [tiers["sequential"].query(q, 6) for q in queries]
        batch_oracle = tiers["sequential"].query_batch(queries, 6)
        for backend in ("memory", "file", "mmap"):
            reopened = load_index(tiers["snapshot"], backend=backend)
            try:
                for q, expected in zip(queries, oracle):
                    _assert_rows_equal(reopened.query(q, 6), expected,
                                       f"load[{backend}] seed={trial_seed}")
                got = reopened.query_batch(queries, 6)
                _assert_rows_equal(got, batch_oracle,
                                   f"load[{backend}] batch")
            finally:
                reopened.close()

    @pytest.mark.parametrize("worker_backend", ["memory", "file", "mmap"])
    def test_process_worker_backend_parity(self, tiers, worker_backend):
        """The workers' own reopen backend must not show in the answers."""
        queries = _queries(77, count=3)
        oracle = tiers["sequential"].query_batch(queries, 5)
        process = open_index(
            tiers["snapshot"],
            execution=Execution(kind="process", workers=2,
                                worker_backend=worker_backend))
        try:
            _assert_rows_equal(process.query_batch(queries, 5), oracle,
                               f"worker_backend={worker_backend}")
        finally:
            process.close()


class TestShardedSelfParity:
    """The sharded build is its own oracle: identical across backends,
    snapshot reloads and batch composition."""

    @pytest.fixture(scope="class")
    def sharded_snapshot(self, tmp_path_factory):
        data = _data()
        directory = tmp_path_factory.mktemp("prop-sharded")
        index = ShardRouter(_params(), 3)
        index.build(data)
        save_index(index, directory)
        yield index, directory
        index.close()

    @pytest.mark.parametrize("trial_seed", [11, 23])
    def test_reload_backend_parity(self, sharded_snapshot, trial_seed):
        index, directory = sharded_snapshot
        queries = _queries(trial_seed, count=4)
        oracle = [index.query(q, 6) for q in queries]
        batch_oracle = index.query_batch(queries, 6)
        for backend in ("memory", "file", "mmap"):
            reopened = load_index(directory, backend=backend)
            try:
                for q, expected in zip(queries, oracle):
                    _assert_rows_equal(
                        reopened.query(q, 6), expected,
                        f"sharded[{backend}] seed={trial_seed}")
                _assert_rows_equal(reopened.query_batch(queries, 6),
                                   batch_oracle, f"sharded[{backend}] batch")
            finally:
                reopened.close()

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 2**20), k=st.integers(1, MAX_K))
    def test_batch_rows_equal_single_queries(self, sharded_snapshot, seed,
                                             k):
        index, _ = sharded_snapshot
        points = _queries(seed, count=3)
        ids, dists = index.query_batch(points, k)
        for row in range(points.shape[0]):
            si, sd = index.query(points[row], k)
            np.testing.assert_array_equal(ids[row, :si.shape[0]], si)
            np.testing.assert_array_equal(dists[row, :sd.shape[0]], sd)
