"""Tests for the exact baselines: linear scan and iDistance.

Both must return *exactly* the true kNN (the paper uses iDistance as the
MAP=1 reference method), so the oracle comparison is equality, not overlap.
"""

import numpy as np
import pytest

from repro.baselines import IDistance, LinearScan
from repro.eval import exact_knn


@pytest.fixture(scope="module")
def workload(tiny_clustered_session):
    return tiny_clustered_session


@pytest.fixture(scope="module")
def tiny_clustered_session():
    rng = np.random.default_rng(55)
    centers = rng.uniform(0.0, 100.0, size=(5, 12))
    data = np.vstack([
        center + rng.normal(0.0, 2.5, size=(50, 12)) for center in centers])
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.4, size=(6, 12))
    return data, queries


class TestLinearScan:
    def test_exactness(self, workload):
        data, queries = workload
        scan = LinearScan()
        scan.build(data.astype(np.float64))
        true_ids, true_dists = exact_knn(data, queries, k=8)
        for row, query in enumerate(queries):
            ids, dists = scan.query(query, 8)
            assert set(ids.tolist()) == set(true_ids[row].tolist())
            np.testing.assert_allclose(np.sort(dists),
                                       np.sort(true_dists[row]), atol=1e-3)

    def test_reads_are_sequential(self, workload):
        data, queries = workload
        scan = LinearScan()
        scan.build(data)
        scan.query(queries[0], 5)
        stats = scan.last_query_stats()
        assert stats.sequential_reads == stats.page_reads
        assert stats.candidates == len(data)

    def test_zero_index_size(self, workload):
        data, _ = workload
        scan = LinearScan()
        scan.build(data)
        assert scan.index_size_bytes() == 0

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            LinearScan().query(np.zeros(4), 1)

    def test_invalid_k(self, workload):
        data, queries = workload
        scan = LinearScan()
        scan.build(data)
        with pytest.raises(ValueError):
            scan.query(queries[0], 0)


class TestIDistance:
    def test_exactness_matches_oracle(self, workload):
        """iDistance is an exact method: ids must equal the true kNN."""
        data, queries = workload
        index = IDistance(num_partitions=8, seed=0)
        index.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        for row, query in enumerate(queries):
            ids, dists = index.query(query, 10)
            assert set(ids.tolist()) == set(true_ids[row].tolist()), row
            assert np.all(np.diff(dists) >= 0)

    def test_exactness_with_single_partition(self, workload):
        data, queries = workload
        index = IDistance(num_partitions=1, seed=1)
        index.build(data)
        true_ids, _ = exact_knn(data, queries[:2], k=5)
        for row in range(2):
            ids, _ = index.query(queries[row], 5)
            assert set(ids.tolist()) == set(true_ids[row].tolist())

    def test_expanding_radius_prunes_partitions(self, workload):
        """Queries should not examine the whole database when clusters are
        well separated."""
        data, queries = workload
        index = IDistance(num_partitions=8, seed=2)
        index.build(data)
        index.query(queries[0], 5)
        stats = index.last_query_stats()
        assert stats.candidates < len(data)

    def test_query_stats_track_radius(self, workload):
        data, queries = workload
        index = IDistance(num_partitions=4, seed=3)
        index.build(data)
        index.query(queries[0], 5)
        assert index.last_query_stats().extra["final_radius"] > 0

    def test_build_memory_includes_dataset(self, workload):
        """The public implementation loads the data into RAM to build —
        the scalability failure the paper reports (crash on SIFT100M)."""
        data, _ = workload
        index = IDistance(num_partitions=4)
        index.build(data)
        assert index.build_memory_bytes() >= data.nbytes

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IDistance(num_partitions=0)

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            IDistance().query(np.zeros(4), 1)
