"""Tests for the SRS baseline."""

import numpy as np
import pytest

from repro.baselines import SRS
from repro.eval import exact_knn, recall_at_k


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(21)
    centers = rng.uniform(0.0, 50.0, size=(5, 20))
    data = np.vstack([
        center + rng.normal(0.0, 1.0, size=(60, 20)) for center in centers])
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.2, size=(6, 20))
    return data, queries


class TestSRS:
    def test_reasonable_recall_with_generous_budget(self, workload):
        # Early termination disabled: recall is then budget-limited only.
        data, queries = workload
        index = SRS(max_fraction=0.3, threshold=1e-9, seed=0)
        index.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        recalls = [recall_at_k(true_ids[row], index.query(q, 10)[0], 10)
                   for row, q in enumerate(queries)]
        assert np.mean(recalls) > 0.6

    def test_early_stop_certifies_ratio_not_rank(self, workload):
        """The paper's core criticism of SRS: the χ² stop fires as soon as
        the answer is c-approximate, long before the *ranking* is right —
        good ratio, poor MAP."""
        data, queries = workload
        index = SRS(max_fraction=1.0, seed=0)   # paper threshold 0.1809
        index.build(data)
        true_ids, true_dists = exact_knn(data, queries, k=10)
        from repro.eval import approximation_ratio, average_precision
        ratios, aps = [], []
        for row, query in enumerate(queries):
            ids, dists = index.query(query, 10)
            stats = index.last_query_stats()
            assert stats.extra["stopped_early"]
            ratios.append(approximation_ratio(true_dists[row], dists))
            aps.append(average_precision(true_ids[row], ids, 10))
        assert np.mean(ratios) <= 2.0          # the guarantee holds
        assert np.mean(aps) < 0.9              # but the ranking suffers

    def test_budget_caps_examined_points(self, workload):
        data, queries = workload
        index = SRS(max_fraction=0.02, threshold=1e-9, seed=1)
        index.build(data)
        index.query(queries[0], 3)
        stats = index.last_query_stats()
        assert stats.candidates <= int(np.ceil(0.02 * len(data)))

    def test_tiny_index_size(self, workload):
        """SRS's selling point: the index is m_SRS floats per point."""
        data, _ = workload
        index = SRS(seed=2)
        index.build(data)
        assert index.index_size_bytes() == len(data) * 6 * 8
        assert index.index_size_bytes() < data.nbytes

    def test_every_fetch_is_a_random_read(self, workload):
        data, queries = workload
        index = SRS(max_fraction=0.1, seed=3)
        index.build(data)
        index.query(queries[0], 5)
        stats = index.last_query_stats()
        assert stats.page_reads == stats.random_reads
        assert stats.page_reads >= stats.candidates // 10

    def test_early_termination_flag(self, workload):
        data, queries = workload
        # A lax threshold makes the χ² test fire almost immediately.
        index = SRS(max_fraction=1.0, threshold=0.999, seed=4)
        index.build(data)
        index.query(queries[0], 3)
        assert index.last_query_stats().extra["stopped_early"]

    def test_full_budget_degenerates_to_exact(self, workload):
        data, queries = workload
        index = SRS(max_fraction=1.0, threshold=1e-12, seed=5)
        index.build(data)
        true_ids, _ = exact_knn(data, queries[:2], k=5)
        for row in range(2):
            ids, _ = index.query(queries[row], 5)
            assert set(ids.tolist()) == set(true_ids[row].tolist())

    def test_projection_dimensionality(self, workload):
        data, _ = workload
        index = SRS(num_projections=8, seed=6)
        index.build(data)
        assert index.tree.points.shape == (len(data), 8)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SRS(num_projections=0)
        with pytest.raises(ValueError):
            SRS(max_fraction=0.0)

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            SRS().query(np.zeros(4), 1)
