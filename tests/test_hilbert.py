"""Unit and property tests for the Hilbert curve (Butz/Skilling)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hilbert import GridQuantizer, HilbertCurve, encode_for_curves


class TestScalarCurve:
    def test_2d_order1_is_the_classic_u(self):
        curve = HilbertCurve(2, 1)
        walk = [curve.decode(key) for key in range(4)]
        # The order-1 Hilbert curve visits 4 cells, each step adjacent.
        assert sorted(map(tuple, walk)) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        for first, second in zip(walk, walk[1:]):
            assert sum(abs(a - b) for a, b in zip(first, second)) == 1

    def test_bijective_2d_order3(self):
        curve = HilbertCurve(2, 3)
        seen = {tuple(curve.decode(key)) for key in range(64)}
        assert len(seen) == 64

    def test_adjacency_3d(self):
        curve = HilbertCurve(3, 3)
        previous = curve.decode(0)
        for key in range(1, 512):
            current = curve.decode(key)
            step = sum(abs(a - b) for a, b in zip(previous, current))
            assert step == 1, f"non-adjacent step at key {key}"
            previous = current

    def test_encode_decode_inverse(self):
        curve = HilbertCurve(4, 4)
        rng = np.random.default_rng(5)
        for _ in range(50):
            point = [int(v) for v in rng.integers(0, 16, size=4)]
            assert curve.decode(curve.encode(point)) == point

    def test_one_dimensional_curve_is_identity(self):
        curve = HilbertCurve(1, 5)
        for value in (0, 1, 17, 31):
            assert curve.encode([value]) == value
            assert curve.decode(value) == [value]

    def test_key_bits_and_bytes(self):
        curve = HilbertCurve(16, 8)
        assert curve.key_bits == 128
        assert curve.key_bytes == 16
        assert HilbertCurve(3, 3).key_bytes == 2  # ceil(9/8)

    def test_out_of_range_coordinate_rejected(self):
        curve = HilbertCurve(2, 3)
        with pytest.raises(ValueError):
            curve.encode([8, 0])
        with pytest.raises(ValueError):
            curve.encode([-1, 0])

    def test_out_of_range_key_rejected(self):
        curve = HilbertCurve(2, 2)
        with pytest.raises(ValueError):
            curve.decode(16)
        with pytest.raises(ValueError):
            curve.decode(-1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HilbertCurve(0, 4)
        with pytest.raises(ValueError):
            HilbertCurve(2, 0)
        with pytest.raises(ValueError):
            HilbertCurve(2, 63)


class TestBatchCurve:
    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        for dim, order in [(2, 4), (3, 7), (8, 8), (16, 8), (5, 32)]:
            curve = HilbertCurve(dim, order)
            points = rng.integers(0, 1 << order, size=(64, dim))
            keys = curve.encode_batch(points)
            for index in range(0, 64, 7):
                assert keys[index] == curve.encode(points[index])

    def test_batch_round_trip(self):
        curve = HilbertCurve(10, 8)
        rng = np.random.default_rng(3)
        points = rng.integers(0, 256, size=(40, 10))
        decoded = curve.decode_batch(curve.encode_batch(points))
        np.testing.assert_array_equal(decoded, points.astype(np.uint64))

    def test_wide_keys_use_python_ints(self):
        curve = HilbertCurve(16, 32)   # 512-bit keys
        points = np.full((2, 16), (1 << 32) - 1, dtype=np.uint64)
        keys = curve.encode_batch(points)
        assert all(isinstance(int(k), int) for k in keys)
        assert max(int(k) for k in keys) < (1 << 512)

    def test_empty_batch(self):
        curve = HilbertCurve(4, 4)
        assert curve.encode_batch(np.empty((0, 4), dtype=np.int64)).size == 0
        assert curve.decode_batch(np.empty(0, dtype=object)).shape == (0, 4)

    def test_wrong_shape_rejected(self):
        curve = HilbertCurve(4, 4)
        with pytest.raises(ValueError):
            curve.encode_batch(np.zeros((3, 5), dtype=np.int64))

    def test_out_of_range_batch_rejected(self):
        curve = HilbertCurve(2, 3)
        with pytest.raises(ValueError):
            curve.encode_batch(np.asarray([[8, 0]]))

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_bijectivity_property(self, dim, order, raw_seed):
        curve = HilbertCurve(dim, order)
        rng = np.random.default_rng(raw_seed)
        point = [int(v) for v in rng.integers(0, 1 << order, size=dim)]
        key = curve.encode(list(point))
        assert 0 <= key < (1 << (dim * order))
        assert curve.decode(key) == point

    @given(st.integers(min_value=2, max_value=4),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_locality_property(self, dim, order, raw_key):
        """Consecutive keys map to grid cells exactly one step apart —
        the locality guarantee HD-Index candidate retrieval relies on."""
        curve = HilbertCurve(dim, order)
        total = 1 << (dim * order)
        key = raw_key % (total - 1)
        first = curve.decode(key)
        second = curve.decode(key + 1)
        assert sum(abs(a - b) for a, b in zip(first, second)) == 1


class TestBatchKeyBytes:
    """The array-native kernel (``encode_batch_bytes`` /
    ``encode_for_curves``) against the scalar ``encode`` oracle."""

    def test_bytes_match_scalar_encode(self):
        rng = np.random.default_rng(17)
        for dim, order in [(2, 4), (3, 7), (8, 8), (16, 8), (5, 32)]:
            curve = HilbertCurve(dim, order)
            points = rng.integers(0, 1 << order, size=(48, dim))
            raw = curve.encode_batch_bytes(points)
            assert raw.shape == (48, curve.key_bytes)
            assert raw.dtype == np.uint8
            for index in range(0, 48, 5):
                key = curve.encode([int(v) for v in points[index]])
                expected = int(key).to_bytes(curve.key_bytes, "big")
                assert raw[index].tobytes() == expected

    def test_bytes_match_encode_batch(self):
        curve = HilbertCurve(7, 9)
        rng = np.random.default_rng(23)
        points = rng.integers(0, 1 << 9, size=(100, 7))
        keys = curve.encode_batch(points)
        raw = curve.encode_batch_bytes(points)
        for key, row in zip(keys, raw):
            assert row.tobytes() == int(key).to_bytes(curve.key_bytes, "big")

    def test_empty_and_invalid(self):
        curve = HilbertCurve(4, 4)
        empty = curve.encode_batch_bytes(np.empty((0, 4), dtype=np.int64))
        assert empty.shape == (0, curve.key_bytes)
        with pytest.raises(ValueError):
            curve.encode_batch_bytes(np.zeros((3, 5), dtype=np.int64))
        with pytest.raises(ValueError):
            curve.encode_batch_bytes(np.asarray([[16, 0, 0, 0]]))

    def test_encode_for_curves_groups_geometries(self):
        rng = np.random.default_rng(29)
        curves = [HilbertCurve(4, 6), HilbertCurve(4, 6),
                  HilbertCurve(3, 6), HilbertCurve(4, 6)]
        coords = [rng.integers(0, 64, size=(count, c.dim))
                  for count, c in zip((5, 9, 4, 1), curves)]
        batched = encode_for_curves(curves, coords)
        for curve, points, raw in zip(curves, coords, batched):
            np.testing.assert_array_equal(
                raw, curve.encode_batch_bytes(points))

    def test_encode_for_curves_misaligned_rejected(self):
        with pytest.raises(ValueError):
            encode_for_curves([HilbertCurve(2, 2)], [])

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_batch_bytes_property(self, dim, order, raw_seed):
        """Batched rows are byte-identical to the scalar oracle across
        random (dim, order) geometries, including multi-word keys."""
        curve = HilbertCurve(dim, order)
        rng = np.random.default_rng(raw_seed)
        points = rng.integers(0, 1 << order, size=(8, dim))
        raw = curve.encode_batch_bytes(points)
        for row, point in zip(raw, points):
            key = curve.encode([int(v) for v in point])
            assert row.tobytes() == int(key).to_bytes(curve.key_bytes, "big")


class TestGridQuantizer:
    def test_quantize_maps_domain_to_grid(self):
        quantizer = GridQuantizer(0.0, 10.0, order=3)
        cells = quantizer.quantize(np.asarray([0.0, 4.9, 9.99]))
        assert cells.tolist() == [0, 3, 7]

    def test_clipping_outside_domain(self):
        quantizer = GridQuantizer(0.0, 1.0, order=4)
        cells = quantizer.quantize(np.asarray([-5.0, 2.0]))
        assert cells.tolist() == [0, 15]

    def test_dequantize_returns_cell_centres(self):
        quantizer = GridQuantizer(0.0, 8.0, order=2)  # cells of width 2
        centres = quantizer.dequantize(np.asarray([0, 3]))
        np.testing.assert_allclose(centres, [1.0, 7.0])

    def test_round_trip_error_bounded_by_cell(self):
        quantizer = GridQuantizer(-1.0, 1.0, order=6)
        rng = np.random.default_rng(2)
        values = rng.uniform(-1.0, 1.0, size=100)
        recovered = quantizer.dequantize(quantizer.quantize(values))
        assert np.max(np.abs(recovered - values)) <= 2.0 / 64

    def test_from_data_fits_domain(self):
        data = np.asarray([[1.0, 5.0], [3.0, 2.0]])
        quantizer = GridQuantizer.from_data(data, order=4)
        assert quantizer.low == 1.0
        assert quantizer.high == 5.0

    def test_from_data_degenerate_constant(self):
        quantizer = GridQuantizer.from_data(np.full((3, 2), 7.0), order=2)
        assert quantizer.quantize(np.asarray([7.0])).tolist() == [0]

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            GridQuantizer(1.0, 1.0, order=4)
        with pytest.raises(ValueError):
            GridQuantizer(0.0, 1.0, order=0)

    def test_monotonic(self):
        quantizer = GridQuantizer(0.0, 1.0, order=5)
        values = np.linspace(0.0, 1.0, 200)
        cells = quantizer.quantize(values)
        assert np.all(np.diff(cells.astype(np.int64)) >= 0)
