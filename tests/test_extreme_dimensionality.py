"""Extreme-dimensionality integration tests.

The paper's Enron corpus has ν = 1369 (the catalog scales it down for the
benches); these tests exercise the genuinely extreme configurations: vector
records spanning multiple pages, very wide Hilbert keys (η·ω > 1000 bits),
and k exceeding every candidate bound.
"""

import numpy as np
import pytest

from repro.core import HDIndex, HDIndexParams
from repro.eval import exact_knn
from repro.hilbert import HilbertCurve


@pytest.fixture(scope="module")
def enron_like():
    """ν = 1369 like the paper's Enron: one descriptor spans > 1 page."""
    rng = np.random.default_rng(5)
    centers = rng.uniform(0.0, 1000.0, size=(4, 1369))
    data = np.vstack([
        center + rng.normal(0.0, 30.0, size=(30, 1369))
        for center in centers])
    queries = data[:4] + rng.normal(0.0, 5.0, size=(4, 1369))
    return np.clip(data, 0, 1000), np.clip(queries, 0, 1000)


class TestUltraHighDimensional:
    def test_build_and_query_nu_1369(self, enron_like):
        data, queries = enron_like
        # τ = 37 trees of η = 37 dims, the paper's Enron configuration.
        index = HDIndex(HDIndexParams(
            num_trees=37, num_references=5, alpha=32, gamma=16,
            domain=(0.0, 1000.0), seed=0))
        index.build(data)
        assert len(index.trees) == 37
        assert all(len(part) == 37 for part in index.partitions)
        ids, dists = index.query(queries[0], 5)
        assert len(ids) == 5
        assert np.all(np.diff(dists) >= 0)

    def test_descriptor_spans_multiple_pages(self, enron_like):
        """1369 float32 = 5476 B > 4096 B: each fetch costs 2 page reads."""
        data, _ = enron_like
        index = HDIndex(HDIndexParams(
            num_trees=8, num_references=4, alpha=16, gamma=8,
            domain=(0.0, 1000.0), seed=0))
        index.build(data)
        assert index.heap.records_per_page == 1
        reads_before = index.heap.stats.page_reads
        index.heap.fetch(0)
        assert index.heap.stats.page_reads - reads_before == 2

    def test_finds_true_neighbours_in_clusters(self, enron_like):
        data, queries = enron_like
        index = HDIndex(HDIndexParams(
            num_trees=8, num_references=5, alpha=48, gamma=24,
            domain=(0.0, 1000.0), seed=0))
        index.build(data)
        true_ids, _ = exact_knn(data, queries, 5)
        hits = 0
        for row, query in enumerate(queries):
            ids, _ = index.query(query, 5)
            hits += len(set(ids.tolist()) & set(true_ids[row].tolist()))
        assert hits / (len(queries) * 5) > 0.5


class TestWideHilbertKeys:
    def test_171_dims_8_bits(self):
        """η·ω = 1368-bit keys — far beyond machine words."""
        curve = HilbertCurve(171, 8)
        assert curve.key_bits == 1368
        rng = np.random.default_rng(0)
        points = rng.integers(0, 256, size=(10, 171))
        keys = curve.encode_batch(points)
        decoded = curve.decode_batch(keys)
        np.testing.assert_array_equal(decoded, points.astype(np.uint64))
        assert max(int(k) for k in keys) < (1 << 1368)


class TestKExceedsBounds:
    def test_k_larger_than_tau_gamma(self, enron_like):
        """resolve_filter_sizes floors every stage at k, so asking for more
        neighbours than γ still returns k answers."""
        data, queries = enron_like
        index = HDIndex(HDIndexParams(
            num_trees=4, num_references=4, alpha=16, gamma=4,
            domain=(0.0, 1000.0), seed=0))
        index.build(data)
        ids, _ = index.query(queries[0], 40)
        assert len(ids) == 40
        assert len(set(ids.tolist())) == 40

    def test_k_equals_n(self, enron_like):
        data, queries = enron_like
        index = HDIndex(HDIndexParams(
            num_trees=4, num_references=4, alpha=len(data),
            gamma=len(data), domain=(0.0, 1000.0), seed=0))
        index.build(data)
        ids, _ = index.query(queries[0], len(data))
        assert sorted(ids.tolist()) == list(range(len(data)))
