"""End-to-end integration tests across modules.

These exercise the exact pipelines the benchmarks run, at miniature scale:
every catalog dataset must build and answer queries, the headline quality
ordering must hold, and the disk-resident story (file-backed stores,
buffering ablation) must work outside the in-memory fast path.
"""

import numpy as np
import pytest

from repro import (
    HDIndex,
    HDIndexParams,
    LinearScan,
    SRS,
    make_dataset,
    run_comparison,
)
from repro.datasets import DATASET_CATALOG
from repro.eval import exact_knn, mean_average_precision
from repro.storage import FilePageStore
from repro.storage.vectors import VectorHeapFile


def small_hd_params(spec, **overrides):
    defaults = dict(num_trees=min(spec.num_trees, 8), hilbert_order=8,
                    num_references=5, alpha=96, gamma=32,
                    domain=spec.domain, seed=0)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


class TestEveryDataset:
    @pytest.mark.parametrize("name", sorted(DATASET_CATALOG))
    def test_build_and_query_each_catalog_entry(self, name):
        spec = DATASET_CATALOG[name]
        ds = make_dataset(name, n=300, num_queries=4, seed=0)
        index = HDIndex(small_hd_params(spec))
        index.build(ds.data)
        ids, dists = index.query(ds.queries[0], 5)
        assert len(ids) == 5
        assert np.all(np.diff(dists) >= 0)
        assert np.all((ids >= 0) & (ids < len(ds)))


class TestQualityOrdering:
    def test_hdindex_beats_srs_on_map(self):
        """The headline Fig. 8/Table 5 shape at miniature scale."""
        ds = make_dataset("sift10k", n=1500, num_queries=10, seed=1)
        k = 10
        true_ids, _ = exact_knn(ds.data, ds.queries, k)
        hd = HDIndex(small_hd_params(ds.spec, alpha=192, gamma=48))
        hd.build(ds.data)
        srs = SRS(seed=1)
        srs.build(ds.data)
        hd_map = mean_average_precision(
            list(true_ids), [hd.query(q, k)[0] for q in ds.queries], k)
        srs_map = mean_average_precision(
            list(true_ids), [srs.query(q, k)[0] for q in ds.queries], k)
        assert hd_map > srs_map

    def test_run_comparison_full_pipeline(self):
        ds = make_dataset("glove", n=400, num_queries=5, seed=2)
        results = run_comparison({
            "Linear": LinearScan,
            "HD-Index": lambda: HDIndex(small_hd_params(ds.spec)),
        }, ds.data, ds.queries, k=5, dataset_name="glove")
        linear, hd = results
        assert linear.map_at_k == pytest.approx(1.0)
        assert hd.map_at_k > 0.5
        # HD-Index reads far fewer pages than the full scan.
        assert hd.avg_page_reads < linear.avg_page_reads


class TestDiskResidence:
    def test_file_backed_heap_round_trips(self, tmp_path):
        ds = make_dataset("sift10k", n=200, num_queries=2, seed=3)
        store = FilePageStore(tmp_path / "vectors.pages")
        heap = VectorHeapFile(dim=ds.dim, dtype=np.float32, store=store)
        heap.append_batch(ds.data)
        got = heap.fetch(137)
        np.testing.assert_allclose(got, ds.data[137], atol=1e-3)
        heap.close()
        assert (tmp_path / "vectors.pages").stat().st_size == \
            store.num_pages * store.page_size

    def test_buffering_reduces_reads_but_not_results(self):
        """The buffering ablation: cached and uncached indexes answer
        identically; only the physical read count changes."""
        ds = make_dataset("audio", n=400, num_queries=4, seed=4)
        cold = HDIndex(small_hd_params(ds.spec, cache_pages=0))
        warm = HDIndex(small_hd_params(ds.spec, cache_pages=512))
        cold.build(ds.data)
        warm.build(ds.data)
        cold_reads = warm_reads = 0
        for query in ds.queries:
            ids_cold, _ = cold.query(query, 5)
            ids_warm, _ = warm.query(query, 5)
            np.testing.assert_array_equal(ids_cold, ids_warm)
            cold_reads += cold.last_query_stats().page_reads
            warm_reads += warm.last_query_stats().page_reads
        assert warm_reads < cold_reads


class TestScalingBehaviour:
    def test_index_size_linear_in_n(self):
        """Sec. 3.5: total space is O(n·ν + n·m·τ)."""
        spec = DATASET_CATALOG["sift10k"]
        sizes = []
        for n in (400, 1600):
            ds = make_dataset("sift10k", n=n, num_queries=1, seed=5)
            index = HDIndex(small_hd_params(spec))
            index.build(ds.data)
            sizes.append(index.index_size_bytes())
        # 4x the data -> ~4x the pages (page-granularity slack at this scale).
        growth = sizes[1] / sizes[0]
        assert 2.5 < growth < 4.5

    def test_query_io_sublinear_in_n(self):
        """Sec. 4.4: disk accesses ~ τ(log n + α/Ω + γ) — far below O(n)."""
        spec = DATASET_CATALOG["sift10k"]
        reads = []
        for n in (400, 1600):
            ds = make_dataset("sift10k", n=n, num_queries=3, seed=6)
            index = HDIndex(small_hd_params(spec))
            index.build(ds.data)
            total = 0
            for query in ds.queries:
                index.query(query, 5)
                total += index.last_query_stats().page_reads
            reads.append(total / len(ds.queries))
        # 4x the data must cost far less than 4x the reads.
        assert reads[1] < reads[0] * 2.5
