"""Unit and property tests for the fixed-width codecs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.storage import (
    ARRAY_PACK_MAGIC,
    BytesCodec,
    Float64Codec,
    StructCodec,
    UInt64Codec,
    UIntCodec,
    pack_arrays,
    unpack_arrays,
)


class TestUIntCodec:
    def test_round_trip(self):
        codec = UIntCodec(16)
        for value in (0, 1, 2**64, 2**127, 2**128 - 1):
            assert codec.decode(codec.encode(value)) == value

    def test_width_enforced(self):
        codec = UIntCodec(2)
        with pytest.raises(ValueError):
            codec.encode(2**16)
        with pytest.raises(ValueError):
            codec.encode(-1)

    def test_byte_order_matches_numeric_order(self):
        codec = UIntCodec(8)
        values = [0, 1, 255, 256, 2**32, 2**63, 2**64 - 1]
        encoded = [codec.encode(v) for v in values]
        assert encoded == sorted(encoded)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            UIntCodec(0)

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_round_trip_property(self, value):
        codec = UIntCodec(16)
        assert codec.decode(codec.encode(value)) == value


class TestFloat64Codec:
    def test_round_trip_signed(self):
        codec = Float64Codec()
        for value in (-1e300, -2.5, -0.0, 0.0, 1e-12, 3.14, 1e300):
            assert codec.decode(codec.encode(value)) == value

    def test_total_order_with_negatives(self):
        codec = Float64Codec()
        values = [-1e9, -42.0, -1.5, -1e-9, 0.0, 1e-9, 1.5, 42.0, 1e9]
        encoded = [codec.encode(v) for v in values]
        assert encoded == sorted(encoded)

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_order_preserving_property(self, a, b):
        codec = Float64Codec()
        if a < b:
            assert codec.encode(a) < codec.encode(b)
        elif a > b:
            assert codec.encode(a) > codec.encode(b)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_round_trip_property(self, value):
        codec = Float64Codec()
        decoded = codec.decode(codec.encode(value))
        assert decoded == value or (value == 0.0 and decoded == 0.0)


class TestUInt64Codec:
    def test_round_trip(self):
        codec = UInt64Codec()
        for value in (0, 7, 2**63, 2**64 - 1):
            assert codec.decode(codec.encode(value)) == value

    def test_width_is_eight(self):
        assert UInt64Codec().width == 8


class TestBytesCodec:
    def test_round_trip(self):
        codec = BytesCodec(4)
        assert codec.decode(codec.encode(b"abcd")) == b"abcd"

    def test_wrong_width_rejected(self):
        codec = BytesCodec(4)
        with pytest.raises(ValueError):
            codec.encode(b"abc")
        with pytest.raises(ValueError):
            codec.encode(b"abcde")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            BytesCodec(0)


class TestStructCodec:
    def test_round_trip_mixed_tuple(self):
        codec = StructCodec(">Qd3f")
        value = (42, 2.5, 1.0, 2.0, 3.0)
        decoded = codec.decode(codec.encode(value))
        assert decoded[0] == 42
        assert decoded[1] == pytest.approx(2.5)
        assert decoded[2:] == pytest.approx((1.0, 2.0, 3.0))

    def test_width_matches_struct(self):
        assert StructCodec(">Q10f").width == 8 + 40


class TestPackArrays:
    def test_round_trip_mixed_dtypes(self):
        arrays = {
            "bytes": np.arange(24, dtype=np.uint8).reshape(6, 4),
            "offsets": np.asarray([0, 3, 6], dtype=np.int64),
            "floats": np.linspace(-1.0, 1.0, 5),
        }
        restored = unpack_arrays(pack_arrays(arrays))
        assert set(restored) == set(arrays)
        for name, array in arrays.items():
            assert restored[name].dtype == array.dtype
            np.testing.assert_array_equal(restored[name], array)

    def test_segments_are_aligned_views(self):
        buffer = np.frombuffer(
            pack_arrays({"a": np.arange(7, dtype=np.int64),
                         "b": np.ones(3, dtype=np.float64)}),
            dtype=np.uint8)
        restored = unpack_arrays(buffer)
        for array in restored.values():
            # Zero-copy (views into the buffer) and 64-byte aligned
            # relative to the container start, so over a page-aligned
            # mmap the views are safe for any dtype.
            assert array.base is not None
            assert (array.ctypes.data - buffer.ctypes.data) % 64 == 0

    def test_empty_arrays_and_empty_dict(self):
        restored = unpack_arrays(pack_arrays(
            {"none": np.empty((0, 16), dtype=np.uint8)}))
        assert restored["none"].shape == (0, 16)
        assert unpack_arrays(pack_arrays({})) == {}

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            unpack_arrays(b"NOPE" + bytes(64))
        assert pack_arrays({}).startswith(ARRAY_PACK_MAGIC)
