"""Tests for the LSH baselines: the shared math, C2LSH and QALSH."""

import numpy as np
import pytest

from repro.baselines import (
    C2LSH,
    QALSH,
    derive_collision_parameters,
    e2lsh_collision_probability,
    qalsh_collision_probability,
    qalsh_optimal_width,
)
from repro.eval import exact_knn, recall_at_k


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(13)
    centers = rng.uniform(0.0, 100.0, size=(6, 16))
    data = np.vstack([
        center + rng.normal(0.0, 2.0, size=(60, 16)) for center in centers])
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.3, size=(6, 16))
    return data, queries


class TestCollisionMath:
    def test_e2lsh_probability_decreases_with_distance(self):
        widths = e2lsh_collision_probability
        assert widths(0.5, 1.0) > widths(1.0, 1.0) > widths(2.0, 1.0)

    def test_e2lsh_probability_at_zero_distance(self):
        assert e2lsh_collision_probability(0.0, 1.0) == 1.0

    def test_e2lsh_known_value(self):
        # p(1) with w=1 is ~0.368 (C2LSH paper's p1 for its default setting).
        assert e2lsh_collision_probability(1.0, 1.0) == pytest.approx(
            0.3685, abs=2e-3)

    def test_qalsh_probability_decreases_with_distance(self):
        assert qalsh_collision_probability(1.0, 2.719) > \
            qalsh_collision_probability(2.0, 2.719)

    def test_qalsh_optimal_width_for_c2(self):
        # QALSH paper: w* ≈ 2.719 for c = 2.
        assert qalsh_optimal_width(2.0) == pytest.approx(2.719, abs=1e-3)

    def test_derived_parameters_sane(self):
        params = derive_collision_parameters(
            10_000, 2.0, 1.0, 1.0 / np.e, 0.01,
            e2lsh_collision_probability, max_functions=4096)
        assert params.p2 < params.alpha < params.p1
        assert 1 <= params.threshold <= params.num_functions
        # C2LSH needs on the order of 10² functions at this setting.
        assert 100 <= params.num_functions <= 300

    def test_qalsh_needs_fewer_functions_than_c2lsh(self):
        c2 = derive_collision_parameters(
            10_000, 2.0, 1.0, 1.0 / np.e, 0.01,
            e2lsh_collision_probability, max_functions=4096)
        qa = derive_collision_parameters(
            10_000, 2.0, qalsh_optimal_width(2.0), 1.0 / np.e, 0.01,
            qalsh_collision_probability, max_functions=4096)
        assert qa.num_functions < c2.num_functions

    def test_max_functions_cap(self):
        params = derive_collision_parameters(
            10_000, 2.0, 1.0, 1.0 / np.e, 0.01,
            e2lsh_collision_probability, max_functions=32)
        assert params.num_functions == 32

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            derive_collision_parameters(0, 2.0, 1.0, 0.5, 0.01,
                                        e2lsh_collision_probability)
        with pytest.raises(ValueError):
            derive_collision_parameters(10, 1.0, 1.0, 0.5, 0.01,
                                        e2lsh_collision_probability)


class TestC2LSH:
    def test_finds_most_true_neighbours(self, workload):
        data, queries = workload
        index = C2LSH(max_functions=96, seed=0)
        index.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        recalls = []
        for row, query in enumerate(queries):
            ids, _ = index.query(query, 10)
            recalls.append(recall_at_k(true_ids[row], ids, 10))
        assert np.mean(recalls) > 0.5

    def test_results_sorted_and_unique(self, workload):
        data, queries = workload
        index = C2LSH(max_functions=64, seed=1)
        index.build(data)
        ids, dists = index.query(queries[0], 10)
        assert np.all(np.diff(dists) >= 0)
        assert len(set(ids.tolist())) == len(ids)

    def test_candidate_budget_respected(self, workload):
        """C2LSH verifies at most βn + k candidates."""
        data, queries = workload
        index = C2LSH(max_functions=64, false_positive_rate=0.1, seed=2)
        index.build(data)
        index.query(queries[0], 5)
        stats = index.last_query_stats()
        assert stats.candidates <= int(0.1 * len(data)) + 5 + 1

    def test_collision_parameters_exposed(self, workload):
        data, _ = workload
        index = C2LSH(max_functions=64)
        index.build(data)
        params = index.collision_parameters()
        assert params.threshold <= params.num_functions

    def test_build_memory_includes_dataset(self, workload):
        data, _ = workload
        index = C2LSH(max_functions=32)
        index.build(data)
        assert index.build_memory_bytes() >= data.nbytes

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            C2LSH().query(np.zeros(4), 1)


class TestQALSH:
    def test_high_recall(self, workload):
        """QALSH is the paper's quality-leading LSH variant."""
        data, queries = workload
        index = QALSH(max_functions=48, seed=0)
        index.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        recalls = []
        for row, query in enumerate(queries):
            ids, _ = index.query(query, 10)
            recalls.append(recall_at_k(true_ids[row], ids, 10))
        assert np.mean(recalls) > 0.7

    def test_query_io_counted_via_btrees(self, workload):
        data, queries = workload
        index = QALSH(max_functions=24, seed=1)
        index.build(data)
        index.query(queries[0], 5)
        stats = index.last_query_stats()
        assert stats.page_reads > 0

    def test_index_is_btree_per_function(self, workload):
        data, _ = workload
        index = QALSH(max_functions=24, seed=2)
        index.build(data)
        assert len(index.trees) == index.collision_parameters().num_functions
        assert all(len(tree) == len(data) for tree in index.trees)
        assert index.index_size_bytes() == sum(
            t.size_bytes() for t in index.trees)

    def test_no_duplicate_counting_across_rounds(self, workload):
        """Expanding windows must not double-count boundary entries, or
        collision counts would overshoot the threshold spuriously."""
        data, queries = workload
        index = QALSH(max_functions=16, seed=3)
        index.build(data)
        index.query(queries[0], 5)
        # Radius expansion happened but candidates stayed within budget.
        stats = index.last_query_stats()
        assert stats.candidates <= len(data)

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            QALSH().query(np.zeros(4), 1)
