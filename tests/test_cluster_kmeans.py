"""Unit tests for the k-means substrate."""

import numpy as np
import pytest

from repro.cluster import kmeans, kmeans_pp_seed


@pytest.fixture(scope="module")
def three_blobs():
    rng = np.random.default_rng(0)
    centers = np.asarray([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
    data = np.vstack([
        center + rng.normal(0.0, 0.4, size=(50, 2)) for center in centers])
    return data, centers


class TestKMeans:
    def test_recovers_well_separated_blobs(self, three_blobs):
        data, true_centers = three_blobs
        result = kmeans(data, 3, np.random.default_rng(1))
        # Every learned centre is close to one true centre.
        for center in result.centers:
            nearest = np.min(np.linalg.norm(true_centers - center, axis=1))
            assert nearest < 1.0

    def test_labels_partition_all_points(self, three_blobs):
        data, _ = three_blobs
        result = kmeans(data, 3, np.random.default_rng(2))
        assert result.labels.shape == (len(data),)
        assert set(result.labels.tolist()) == {0, 1, 2}

    def test_inertia_decreases_with_more_clusters(self, three_blobs):
        data, _ = three_blobs
        rng = np.random.default_rng(3)
        inertia_2 = kmeans(data, 2, rng).inertia
        inertia_6 = kmeans(data, 6, np.random.default_rng(3)).inertia
        assert inertia_6 < inertia_2

    def test_k_equals_n_zero_inertia(self):
        data = np.random.default_rng(4).normal(size=(8, 3))
        result = kmeans(data, 8, np.random.default_rng(4))
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_one_center_is_mean(self):
        data = np.random.default_rng(5).normal(size=(40, 4))
        result = kmeans(data, 1, np.random.default_rng(5))
        np.testing.assert_allclose(result.centers[0], data.mean(axis=0),
                                   atol=1e-9)

    def test_identical_points_handled(self):
        data = np.ones((20, 3))
        result = kmeans(data, 4, np.random.default_rng(6))
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_k_rejected(self):
        data = np.zeros((5, 2))
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, 6)

    def test_converges_within_budget(self, three_blobs):
        data, _ = three_blobs
        result = kmeans(data, 3, np.random.default_rng(7),
                        max_iterations=100)
        assert result.iterations < 100


class TestSeeding:
    def test_pp_seed_picks_data_points(self, three_blobs):
        data, _ = three_blobs
        centers = kmeans_pp_seed(data, 5, np.random.default_rng(8))
        for center in centers:
            assert np.any(np.all(np.isclose(data, center), axis=1))

    def test_pp_seed_spreads_over_blobs(self, three_blobs):
        data, true_centers = three_blobs
        centers = kmeans_pp_seed(data, 3, np.random.default_rng(9))
        # D² sampling should land one seed near each well-separated blob.
        assigned = set()
        for center in centers:
            assigned.add(int(np.argmin(
                np.linalg.norm(true_centers - center, axis=1))))
        assert len(assigned) == 3
