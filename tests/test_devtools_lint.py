"""Tests for the repo-native lint (repro.devtools.lint).

Every rule has a red fixture under ``tests/fixtures/lint/`` carrying
``# expect: CODE`` markers on the exact lines the rule must flag; the
tests assert the found ``(code, line)`` set equals the annotated set,
so both false negatives *and* false positives (or drifting line
anchors) fail loudly.
"""

import json
import re
from pathlib import Path

import pytest

from repro.devtools.config import LintConfig, default_config_path
from repro.devtools.lint import (
    REGISTRY,
    UNKNOWN_PRAGMA_CODE,
    lint_paths,
    lint_source,
    main,
    pragma_lines,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).resolve().parents[1]

EXPECT_RE = re.compile(r"expect:\s*([A-Z]{2,4}\d{3})")


def fixture_config() -> LintConfig:
    """Declarations matching the fixture files' docstrings."""
    return LintConfig.from_dict({
        "hot": [
            {"file": "tests/fixtures/lint/hot_kernel_bad.py"},
            {"file": "tests/fixtures/lint/clean.py"},
        ],
        "forksafety": {
            "files": ["tests/fixtures/lint/fork_safety_bad.py"],
            "worker_functions": ["_worker_task"],
            "allowed_worker_globals": ["_STATE"],
            "bootstrap_functions": ["_bootstrap"],
            "required_bootstrap_calls": ["_demote_executors"],
            "unpicklable_factories": ["MmapPageStore"],
        },
        "api": {
            "frozen_dataclass_files": ["tests/fixtures/lint/api_bad.py"],
        },
    })


def expectations(path: Path) -> set[tuple[str, int]]:
    """Parse the ``# expect: CODE`` markers into a (code, line) set."""
    expected: set[tuple[str, int]] = set()
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        for code in EXPECT_RE.findall(line):
            expected.add((code, lineno))
    return expected


def run_fixture(name: str):
    path = FIXTURES / name
    return path, lint_source(str(path),
                             path.read_text(encoding="utf-8"),
                             fixture_config())


class TestRedFixtures:
    """Known-bad snippets must produce exactly the annotated findings."""

    @pytest.mark.parametrize("name", ["hot_kernel_bad.py",
                                      "fork_safety_bad.py", "api_bad.py"])
    def test_findings_match_annotations(self, name):
        path, result = run_fixture(name)
        found = {(f.code, f.line) for f in result.findings}
        assert found == expectations(path)
        assert not result.suppressed

    @pytest.mark.parametrize("code", sorted(REGISTRY))
    def test_every_rule_fires_on_some_fixture(self, code):
        all_codes = set()
        for name in ("hot_kernel_bad.py", "fork_safety_bad.py",
                     "api_bad.py"):
            _, result = run_fixture(name)
            all_codes.update(f.code for f in result.findings)
        assert code in all_codes, f"no fixture exercises {code}"

    def test_findings_are_errors(self):
        _, result = run_fixture("hot_kernel_bad.py")
        assert result.findings and all(
            f.severity == "error" for f in result.findings)
        assert not result.clean


class TestCleanFixture:
    def test_vectorised_code_stays_quiet_even_when_hot(self):
        path, result = run_fixture("clean.py")
        assert result.findings == []
        assert result.suppressed == []
        assert result.clean


class TestPragmas:
    def test_pragma_suppresses_same_line_finding(self):
        _, result = run_fixture("pragmas.py")
        surviving_errors = [f for f in result.findings
                            if f.severity == "error"]
        assert surviving_errors == []
        suppressed = sorted((f.code for f in result.suppressed))
        assert suppressed == ["API301", "API302", "API302", "API302"]

    def test_unknown_pragma_code_warns(self):
        path, result = run_fixture("pragmas.py")
        warnings = [f for f in result.findings
                    if f.code == UNKNOWN_PRAGMA_CODE]
        assert len(warnings) == 1
        assert warnings[0].severity == "warning"
        assert "HK999" in warnings[0].message
        assert (warnings[0].line
                in {line for _, line in expectations(path)})
        # Warnings never affect the exit-status notion of clean.
        assert result.clean

    def test_pragma_inside_string_literal_is_not_a_pragma(self):
        path = FIXTURES / "pragmas.py"
        source = path.read_text(encoding="utf-8")
        disabled, _ = pragma_lines(source, str(path))
        string_line = next(
            lineno for lineno, line in enumerate(source.splitlines(), 1)
            if line.startswith("PRAGMA_TEXT"))
        assert string_line not in disabled

    def test_multiple_codes_one_pragma(self):
        source = (
            "def f(a=[], b={}):  # lint: disable=API302, API301\n"
            "    return a, b\n")
        result = lint_source("x.py", source, fixture_config())
        assert [f.code for f in result.suppressed] == ["API302", "API302"]
        assert [f.code for f in result.findings] == []


class TestConfig:
    def test_suffix_matching(self):
        config = fixture_config()
        assert config.hot_decl_for(
            str(FIXTURES / "hot_kernel_bad.py")) is not None
        assert config.hot_decl_for(
            "/elsewhere/not_hot_kernel_bad.py") is None

    def test_function_include_list(self):
        config = LintConfig.from_dict({
            "hot": [{"file": "m.py", "functions": ["Klass.fast"],
                     "exclude": ["Klass.fast.helper"]}]})
        decl = config.hot_decl_for("src/m.py")
        assert decl.applies_to("Klass.fast")
        assert decl.applies_to("Klass.fast.inner")
        assert not decl.applies_to("Klass.fast.helper")
        assert not decl.applies_to("Klass.slow")

    def test_committed_config_loads_and_covers_the_hot_path(self):
        config = LintConfig.load(default_config_path())
        assert config.hot_decl_for("src/repro/core/filters.py")
        assert config.hot_decl_for("src/repro/btree/packed.py")
        assert config.forksafety.covers("src/repro/core/procpool.py")
        assert config.api.requires_frozen("src/repro/core/spec.py")


class TestWholeTree:
    def test_src_repro_is_lint_clean(self):
        """The acceptance criterion: the shipped tree lints clean."""
        result = lint_paths([REPO_ROOT / "src" / "repro"])
        errors = [f for f in result.findings if f.severity == "error"]
        assert errors == [], "\n".join(f.render() for f in errors)

    def test_in_tree_pragmas_all_justified(self):
        """Every committed pragma suppresses a real finding (no dead
        pragmas) and sits next to a justification comment block."""
        result = lint_paths([REPO_ROOT / "src" / "repro"])
        assert result.suppressed, "expected in-tree justified pragmas"
        for finding in result.suppressed:
            lines = Path(finding.path).read_text(
                encoding="utf-8").splitlines()
            above = "\n".join(lines[max(0, finding.line - 5):
                                    finding.line - 1])
            assert "#" in above, (
                f"pragma at {finding.path}:{finding.line} lacks a "
                f"justification comment")


class TestCli:
    def test_json_output_and_exit_code(self, capsys, tmp_path):
        config_path = tmp_path / "hotpaths.toml"
        config_path.write_text(
            '[[hot]]\nfile = "tests/fixtures/lint/hot_kernel_bad.py"\n',
            encoding="utf-8")
        status = main([str(FIXTURES / "hot_kernel_bad.py"),
                       "--config", str(config_path), "--format", "json"])
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["counts"]["errors"] == len(payload["findings"])
        codes = {f["code"] for f in payload["findings"]}
        assert codes == {"HK101", "HK102", "HK103", "HK104", "HK105"}

    def test_clean_run_exits_zero_and_writes_report(self, capsys,
                                                    tmp_path):
        report = tmp_path / "report.json"
        status = main([str(FIXTURES / "clean.py"),
                       "--report", str(report)])
        assert status == 0
        assert json.loads(report.read_text(encoding="utf-8"))["clean"]

    def test_missing_path_is_usage_error(self, capsys):
        assert main([str(FIXTURES / "no_such_file.py")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in REGISTRY:
            assert code in out
