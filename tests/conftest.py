"""Shared fixtures: small clustered workloads reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_dataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_sift():
    """A small SIFT-like workload: 800 points, 16 queries, 32 dims worth of
    clustering signal kept in 128 dims."""
    return make_dataset("sift10k", n=800, num_queries=16, seed=7)


@pytest.fixture(scope="session")
def tiny_clustered(rng):
    """Tiny low-dimensional clustered data for exactness-oriented tests."""
    centers = rng.uniform(0.0, 100.0, size=(6, 16))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(60, 16)) for center in centers
    ])
    queries = data[rng.choice(len(data), 8, replace=False)] \
        + rng.normal(0.0, 0.5, size=(8, 16))
    return np.clip(data, 0.0, 100.0), np.clip(queries, 0.0, 100.0)
