"""The declarative `IndexSpec` API: validation, factories, and the
combinations the old class matrix could not express.

The headline contract (the PR's acceptance criterion): a sharded x
process spec builds, persists, reopens via ``repro.open()``, and returns
results byte-identical to the sequential spec on the same workload.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro import (
    Execution,
    HDIndexParams,
    IndexSpec,
    QueryService,
    Topology,
)
from repro.core import ShardRouter, create_index, set_execution
from repro.eval import evaluate_spec

DIM = 16
K = 6


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(99)
    centers = rng.uniform(0.0, 100.0, size=(5, DIM))
    data = np.vstack([center + rng.normal(0.0, 3.0, size=(60, DIM))
                      for center in centers])
    data = data[rng.permutation(len(data))]
    queries = data[rng.choice(len(data), 8, replace=False)] \
        + rng.normal(0.0, 0.5, size=(8, DIM))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


def params(**overrides):
    defaults = dict(num_trees=4, hilbert_order=6, num_references=5,
                    alpha=96, gamma=24, domain=(0.0, 100.0), seed=3)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


class TestSpecValidation:
    def test_defaults(self):
        spec = IndexSpec()
        assert spec.topology.shards == 1
        assert spec.execution.kind == "sequential"
        assert spec.backend is None

    def test_execution_kind_aliases_and_rejection(self):
        assert Execution(kind="threaded").kind == "thread"
        with pytest.raises(ValueError, match="execution kind"):
            Execution(kind="fiber")
        with pytest.raises(ValueError, match="workers"):
            Execution(kind="thread", workers=0)
        with pytest.raises(ValueError, match="worker backend"):
            Execution(worker_backend="tape")
        with pytest.raises(ValueError, match="worker_timeout"):
            Execution(worker_timeout=0)

    def test_topology_rejection(self):
        with pytest.raises(ValueError, match="shards"):
            Topology(shards=0)
        with pytest.raises(ValueError, match="shard_backends"):
            Topology(shards=3, shard_backends=("memory",))
        with pytest.raises(ValueError, match="shard backend"):
            Topology(shards=1, shard_backends=("tape",))

    def test_spec_backend_rejection(self):
        with pytest.raises(ValueError, match="storage backend"):
            IndexSpec(backend="tape")

    def test_dict_round_trip_survives_json(self):
        spec = IndexSpec(params=params(), topology=Topology(shards=3),
                         execution=Execution(kind="process", workers=2,
                                             worker_timeout=1.5),
                         backend="mmap")
        rebuilt = IndexSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_coercion_from_params_dict_and_ints(self):
        from repro.core import coerce_spec
        assert coerce_spec(params()).params == params()
        spec = coerce_spec({"topology": {"shards": 2},
                            "execution": {"kind": "thread"}})
        assert spec.topology.shards == 2
        assert spec.execution.kind == "thread"
        with pytest.raises(TypeError):
            coerce_spec(42)

    def test_sharded_process_requires_storage_dir(self):
        with pytest.raises(ValueError, match="storage_dir"):
            create_index(IndexSpec(params=params(),
                                   topology=Topology(shards=2),
                                   execution=Execution(kind="process")))


class TestFactoryCombos:
    def test_plain_spec_equals_classic_hdindex(self, workload):
        data, queries = workload
        classic = repro.HDIndex(params())
        classic.build(data)
        spec_built = repro.build(IndexSpec(params=params()), data)
        for q in queries:
            np.testing.assert_array_equal(classic.query(q, K)[0],
                                          spec_built.query(q, K)[0])
        classic.close()
        spec_built.close()

    @pytest.mark.parametrize("execution", [
        Execution(kind="sequential"),
        Execution(kind="thread", workers=3),
    ], ids=["sequential", "thread"])
    @pytest.mark.parametrize("shards", [1, 2])
    def test_topology_execution_grid_parity(self, workload, shards,
                                            execution):
        """Every in-process grid point answers identically to the plain
        sequential spec over the same data and seeds."""
        data, queries = workload
        oracle = repro.build(
            IndexSpec(params=params(), topology=Topology(shards=shards)),
            data)
        expected = oracle.query_batch(queries, K)
        combo = repro.build(
            IndexSpec(params=params(), topology=Topology(shards=shards),
                      execution=execution), data)
        got = combo.query_batch(queries, K)
        np.testing.assert_array_equal(got[0], expected[0])
        np.testing.assert_array_equal(got[1], expected[1])
        oracle.close()
        combo.close()

    def test_sharded_process_combo_byte_identical_and_reopens(
            self, workload, tmp_path):
        """The acceptance criterion: sharded x process — impossible in the
        old class matrix — builds, persists, reopens via repro.open(), and
        matches the sequential spec byte-for-byte."""
        data, queries = workload
        oracle = repro.build(
            IndexSpec(params=params(), topology=Topology(shards=2)), data)
        expected_batch = oracle.query_batch(queries, K)
        expected_single = [oracle.query(q, K) for q in queries[:4]]
        oracle.close()

        spec = IndexSpec(params=params(), topology=Topology(shards=2),
                         execution=Execution(kind="process", workers=2),
                         backend="mmap")
        index = repro.build(spec, data, storage_dir=tmp_path)
        try:
            assert isinstance(index, ShardRouter)
            got = index.query_batch(queries, K)
            np.testing.assert_array_equal(got[0], expected_batch[0])
            np.testing.assert_array_equal(got[1], expected_batch[1])
        finally:
            index.close()

        reopened = repro.open(tmp_path)
        try:
            assert reopened.spec.execution.kind == "process"
            assert reopened.spec.topology.shards == 2
            got = reopened.query_batch(queries, K)
            np.testing.assert_array_equal(got[0], expected_batch[0])
            np.testing.assert_array_equal(got[1], expected_batch[1])
            for q, (ids, dists) in zip(queries, expected_single):
                got_ids, got_dists = reopened.query(q, K)
                np.testing.assert_array_equal(got_ids, ids)
                np.testing.assert_array_equal(got_dists, dists)
        finally:
            reopened.close()

    def test_heterogeneous_shard_backends(self, workload, tmp_path):
        """Per-shard storage backends (hot shard in RAM, cold shard
        mmap'd) — the other previously-impossible combination."""
        data, queries = workload
        oracle = repro.build(
            IndexSpec(params=params(), topology=Topology(shards=2)), data)
        expected = oracle.query_batch(queries, K)
        oracle.close()
        spec = IndexSpec(
            params=params(),
            topology=Topology(shards=2, shard_backends=("memory", "mmap")))
        index = repro.build(spec, data, storage_dir=tmp_path)
        try:
            from repro.storage.pages import InMemoryPageStore, MmapPageStore
            assert isinstance(index.shards[0].heap.pool.store,
                              InMemoryPageStore)
            assert isinstance(index.shards[1].heap.pool.store,
                              MmapPageStore)
            got = index.query_batch(queries, K)
            np.testing.assert_array_equal(got[0], expected[0])
            np.testing.assert_array_equal(got[1], expected[1])
        finally:
            index.close()
        reopened = repro.open(tmp_path)
        try:
            assert reopened.topology.shard_backends == ("memory", "mmap")
            got = reopened.query_batch(queries, K)
            np.testing.assert_array_equal(got[0], expected[0])
        finally:
            reopened.close()

    def test_open_execution_override(self, workload, tmp_path):
        """A snapshot built sequentially serves thread- or
        process-parallel without rebuilding."""
        data, queries = workload
        index = repro.build(IndexSpec(params=params()), data,
                            storage_dir=tmp_path)
        expected = index.query_batch(queries, K)
        index.close()
        for execution in ("thread",
                          Execution(kind="process", workers=2)):
            reopened = repro.open(tmp_path, execution=execution)
            try:
                got = reopened.query_batch(queries, K)
                np.testing.assert_array_equal(got[0], expected[0])
                np.testing.assert_array_equal(got[1], expected[1])
            finally:
                reopened.close()

    def test_unsized_process_spec_persists_workers_none(self, workload,
                                                        tmp_path):
        """A spec that leaves workers unset must persist workers=None —
        "size to the serving machine" — not the build box's resolved CPU
        count."""
        data, _ = workload
        index = repro.build(
            IndexSpec(params=params(), execution=Execution(kind="process")),
            data, storage_dir=tmp_path)
        assert index.spec.execution.workers is None
        index.close()
        import json as _json
        with open(tmp_path / "meta.json") as handle:
            meta = _json.load(handle)
        assert meta["spec"]["execution"]["workers"] is None
        reopened = repro.open(tmp_path)
        try:
            assert reopened.spec.execution.workers is None
        finally:
            reopened.close()

    def test_set_execution_failure_leaves_router_consistent(self, workload):
        data, _ = workload
        index = repro.build(
            IndexSpec(params=params(), topology=Topology(shards=2)), data)
        with pytest.raises(ValueError, match="storage_dir"):
            set_execution(index, Execution(kind="process"))
        # The failed swap must not have mutated the recorded execution
        # (a later save_index would persist a lie) nor any shard.
        assert index.spec.execution.kind == "sequential"
        from repro.core import SequentialExecutor
        assert all(isinstance(s.executor, SequentialExecutor)
                   for s in index.shards)
        index.close()

    def test_process_router_insert_keeps_snapshot_reopenable(self,
                                                             workload,
                                                             tmp_path):
        """Regression: insert() on a process-execution router must also
        refresh the auto-persisted manifest (count, insert_tails) — a
        stale manifest made reopening crash on the grown id maps."""
        data, queries = workload
        index = repro.build(
            IndexSpec(params=params(), topology=Topology(shards=2),
                      execution=Execution(kind="process", workers=2)),
            data, storage_dir=tmp_path)
        probe = np.full(DIM, 51.0)
        new_id = index.insert(probe)
        ids, _ = index.query(probe, 1)  # triggers the lazy resync
        assert ids[0] == new_id
        index.close()
        reopened = repro.open(tmp_path)
        try:
            assert reopened.count == len(data) + 1
            ids, dists = reopened.query(probe, 1)
            assert ids[0] == new_id and dists[0] < 1e-3
        finally:
            reopened.close()

    def test_single_shard_with_backend_override_builds_router(self):
        """shards=1 plus shard_backends still routes through ShardRouter
        (the CLI's build report must branch on the built type, not the
        shard count)."""
        spec = IndexSpec(params=params(),
                         topology=Topology(shards=1,
                                           shard_backends=("memory",)))
        index = create_index(spec)
        assert isinstance(index, ShardRouter)
        assert index.num_shards == 1
        index.close()

    def test_sharded_delete_after_build_survives_resave(self, workload,
                                                        tmp_path):
        """Remote shards skip redundant re-saves, but a delete() since
        the last self-persist must still reach the snapshot."""
        data, queries = workload
        from repro.core import save_index
        index = repro.build(
            IndexSpec(params=params(), topology=Topology(shards=2),
                      execution=Execution(kind="process", workers=2)),
            data, storage_dir=tmp_path)
        victim = int(index.query(queries[0], 1)[0][0])
        index.delete(victim)
        save_index(index, tmp_path)
        index.close()
        reopened = repro.open(tmp_path)
        try:
            ids, _ = reopened.query(queries[0], 1)
            assert ids[0] != victim
        finally:
            reopened.close()

    def test_set_execution_on_live_router(self, workload, tmp_path):
        data, queries = workload
        index = repro.build(
            IndexSpec(params=params(), topology=Topology(shards=2)),
            data, storage_dir=tmp_path)
        expected = index.query_batch(queries, K)
        set_execution(index, Execution(kind="thread", workers=2))
        got = index.query_batch(queries, K)
        np.testing.assert_array_equal(got[0], expected[0])
        assert index.spec.execution.kind == "thread"
        index.close()


class TestSpecThroughHarnessAndService:
    def test_evaluate_spec_records_spec(self, workload):
        data, queries = workload
        result = evaluate_spec(
            IndexSpec(params=params(), topology=Topology(shards=2)),
            data, queries, K)
        assert result.extra["spec"]["topology"]["shards"] == 2
        assert 0.0 <= result.map_at_k <= 1.0

    def test_service_accepts_snapshot_path(self, workload, tmp_path):
        data, queries = workload
        index = repro.build(IndexSpec(params=params()), data,
                            storage_dir=tmp_path)
        expected = [index.query(q, K) for q in queries[:4]]
        index.close()
        with QueryService(tmp_path, max_batch=4,
                          max_wait_ms=1.0) as service:
            for q, (ids, dists) in zip(queries, expected):
                got_ids, got_dists = service.query(q, K, timeout=30.0)
                np.testing.assert_array_equal(got_ids, ids)
                np.testing.assert_array_equal(got_dists, dists)

    def test_service_execution_object(self, workload, tmp_path):
        data, queries = workload
        index = repro.build(IndexSpec(params=params()), data,
                            storage_dir=tmp_path)
        expected = [index.query(q, K) for q in queries[:4]]
        index.close()
        with QueryService.from_snapshot(
                tmp_path, execution=Execution(kind="process", workers=2),
                max_batch=4) as service:
            assert service.mode == "process"
            for q, (ids, dists) in zip(queries, expected):
                got_ids, got_dists = service.query(q, K, timeout=30.0)
                np.testing.assert_array_equal(got_ids, ids)
                np.testing.assert_array_equal(got_dists, dists)

    def test_execution_object_merges_unset_keywords(self, workload,
                                                    tmp_path):
        """workers= alongside an Execution object fills its unset field
        instead of being silently dropped."""
        data, _ = workload
        index = repro.build(IndexSpec(params=params()), data,
                            storage_dir=tmp_path)
        index.close()
        service = QueryService.from_snapshot(
            tmp_path, execution=Execution(kind="process"), workers=1)
        try:
            assert service.execution.workers == 1
            assert service.execution.kind == "process"
        finally:
            service.close()

    def test_query_and_submit_share_one_normaliser(self, workload):
        """Satellite: query() routes through submit(), so cache keys and
        override canonicalisation cannot diverge between the two paths."""
        data, queries = workload
        index = repro.HDIndex(params())
        index.build(data)
        with QueryService(index, max_batch=4, max_wait_ms=0.0,
                          cache_size=32) as service:
            service.query(queries[0], K, alpha=64, gamma=None)
            # Same call through submit(), overrides spelled differently
            # (None-valued override dropped by canonicalisation): must be
            # a cache hit, proving one shared key path.
            service.submit(queries[0], K, gamma=None, alpha=64).result(30.0)
            stats = service.stats()
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        index.close()
