"""Property-based WAL invariants (hypothesis).

Random interleavings of insert / delete / query / compact, applied to a
WAL-backed index, must stay **byte-identical** to an oracle freshly
built from the same operation stream in one shot — at every query point,
whatever the execution strategy.  Deleted ids must never surface, no
matter whether the delete landed in the base snapshot or the in-memory
delta segment.

The exhaustive regime (α ≥ n, γ = α, triangular filter only) turns the
index into exact brute force, so "byte-identical" is a meaningful
contract rather than a flaky approximation.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Execution, HDIndex, HDIndexParams, IndexSpec, build

DIM = 4
BASE_N = 40
MAX_TOTAL = BASE_N + 48


def _params():
    return HDIndexParams(num_trees=2, hilbert_order=6, num_references=4,
                         alpha=max(256, MAX_TOTAL), gamma=max(256, MAX_TOTAL),
                         use_ptolemaic=False, domain=(0.0, 100.0), seed=5,
                         storage_dir=None)


def _vectors(seed, count):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 100.0, size=(count, DIM))


#: Op stream: each element picks an action; inserts carry their own
#: fresh vector (derived from the example seed + position).
_OPS = st.lists(st.integers(0, 99), min_size=6, max_size=32)


def _run_interleaving(kind, seed, ops, workers=2):
    """Drive a WAL index through the op stream, checking byte-identical
    parity with a one-shot oracle at every query (and at the end)."""
    vectors = [v for v in _vectors(seed, BASE_N)]
    deleted: set[int] = set()
    fresh = iter(_vectors(seed + 1_000_003, len(ops)))
    with tempfile.TemporaryDirectory() as tmp:
        execution = Execution(kind=kind, workers=workers, wal=True) \
            if kind != "sequential" else Execution(wal=True)
        index = build(IndexSpec(params=_params(), execution=execution),
                      np.asarray(vectors), storage_dir=tmp)
        index._wal_fsync = "batch"
        try:
            checked = False
            for position, code in enumerate(ops):
                if code < 50:                          # insert
                    vector = next(fresh)
                    assigned = index.insert(vector)
                    assert assigned == len(vectors)
                    vectors.append(vector)
                elif code < 70:                        # delete
                    victim = (seed + position) % len(vectors)
                    if victim not in deleted:
                        index.delete(victim)
                        deleted.add(victim)
                elif code < 90 or position == len(ops) - 1:   # query
                    _check_parity(index, vectors, deleted,
                                  seed + position)
                    checked = True
                else:                                  # compact
                    index.compact()
            if not checked:
                _check_parity(index, vectors, deleted, seed)
        finally:
            index.close()


def _check_parity(index, vectors, deleted, query_seed):
    live = len(vectors) - len(deleted)
    k = max(1, min(5, live))
    queries = _vectors(query_seed + 7, 2)
    oracle = HDIndex(_params())
    oracle.build(np.asarray(vectors))
    for object_id in deleted:
        oracle.delete(object_id)
    try:
        for query in queries:
            ids, dists = index.query(query, k)
            oracle_ids, oracle_dists = oracle.query(query, k)
            np.testing.assert_array_equal(ids, oracle_ids)
            np.testing.assert_array_equal(dists, oracle_dists)
            assert not (set(int(i) for i in ids) & deleted)
    finally:
        oracle.close()


class TestInterleavingParity:
    @pytest.mark.parametrize("kind", ["sequential", "thread"])
    @given(seed=st.integers(0, 10**6), ops=_OPS)
    @settings(max_examples=8, deadline=None)
    def test_matches_one_shot_oracle(self, kind, seed, ops):
        _run_interleaving(kind, seed, ops)

    @given(seed=st.integers(0, 10**6), ops=_OPS)
    @settings(max_examples=2, deadline=None)
    def test_process_execution_matches_oracle(self, seed, ops):
        _run_interleaving("process", seed, ops)


class TestDeletedNeverSurface:
    @given(seed=st.integers(0, 10**6),
           delta_inserts=st.integers(1, 12),
           delete_count=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_deleted_in_delta_absent_from_answers(self, seed,
                                                  delta_inserts,
                                                  delete_count):
        """Deleting ids that live in the un-compacted delta — and ids in
        the base snapshot — must hide them from every answer, even at
        k = full count where brute force would otherwise return them."""
        vectors = _vectors(seed, BASE_N)
        with tempfile.TemporaryDirectory() as tmp:
            index = build(IndexSpec(params=_params(),
                                    execution=Execution(wal=True)),
                          vectors, storage_dir=tmp)
            index._wal_fsync = "batch"
            try:
                extra = _vectors(seed + 99, delta_inserts)
                for vector in extra:
                    index.insert(vector)
                total = BASE_N + delta_inserts
                rng = np.random.default_rng(seed + 5)
                victims = set(
                    int(i) for i in rng.choice(total,
                                               size=min(delete_count,
                                                        total - 1),
                                               replace=False))
                for victim in victims:
                    index.delete(victim)
                # Query *for the deleted vectors themselves*: the worst
                # case, where each victim would be its own 0-distance
                # nearest neighbour.
                every = np.vstack([vectors, extra])
                k = total - len(victims)
                for victim in victims:
                    ids, _ = index.query(every[victim], k)
                    assert victim not in set(int(i) for i in ids)
            finally:
                index.close()
