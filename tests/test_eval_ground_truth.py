"""Unit tests for the exact ground-truth oracle."""

import numpy as np
import pytest

from repro.eval import GroundTruth, exact_knn


class TestExactKnn:
    def test_matches_naive_argsort(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(200, 10))
        queries = rng.normal(size=(5, 10))
        ids, dists = exact_knn(data, queries, k=7)
        for row in range(5):
            naive = np.sqrt(((data - queries[row]) ** 2).sum(axis=1))
            expected = np.argsort(naive, kind="stable")[:7]
            np.testing.assert_array_equal(np.sort(ids[row]),
                                          np.sort(expected))
            np.testing.assert_allclose(dists[row], np.sort(naive)[:7],
                                       atol=1e-9)

    def test_distances_sorted(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100, 4))
        ids, dists = exact_knn(data, rng.normal(size=(3, 4)), k=10)
        assert np.all(np.diff(dists, axis=1) >= 0)

    def test_query_point_in_database_is_rank_one(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(50, 6))
        ids, dists = exact_knn(data, data[13], k=1)
        assert ids[0, 0] == 13
        assert dists[0, 0] == 0.0

    def test_single_query_vector_accepted(self):
        data = np.eye(4)
        ids, dists = exact_knn(data, np.zeros(4), k=2)
        assert ids.shape == (1, 2)

    def test_k_equals_n(self):
        data = np.eye(5)
        ids, _ = exact_knn(data, np.zeros(5), k=5)
        assert sorted(ids[0].tolist()) == [0, 1, 2, 3, 4]

    def test_blocking_consistency(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(300, 8))
        queries = rng.normal(size=(20, 8))
        ids_small, _ = exact_knn(data, queries, k=5, block=3)
        ids_large, _ = exact_knn(data, queries, k=5, block=1000)
        np.testing.assert_array_equal(ids_small, ids_large)

    def test_tie_break_by_id_is_deterministic(self):
        data = np.zeros((4, 3))  # all identical -> all distances tie
        ids, _ = exact_knn(data, np.zeros(3), k=3)
        assert ids[0].tolist() == [0, 1, 2]

    def test_invalid_k_rejected(self):
        data = np.eye(3)
        with pytest.raises(ValueError):
            exact_knn(data, np.zeros(3), k=0)
        with pytest.raises(ValueError):
            exact_knn(data, np.zeros(3), k=4)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            exact_knn(np.eye(3), np.zeros((1, 4)), k=1)


class TestGroundTruthCache:
    def test_slices_smaller_k(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(80, 5))
        queries = rng.normal(size=(4, 5))
        cache = GroundTruth(data, queries, max_k=20)
        direct_ids, direct_dists = exact_knn(data, queries, k=5)
        np.testing.assert_array_equal(cache.top_ids(5), direct_ids)
        np.testing.assert_allclose(cache.top_distances(5), direct_dists)

    def test_k_beyond_max_rejected(self):
        data = np.random.default_rng(5).normal(size=(30, 4))
        cache = GroundTruth(data, data[:2], max_k=10)
        with pytest.raises(ValueError):
            cache.top_ids(11)
        with pytest.raises(ValueError):
            cache.top_ids(0)
