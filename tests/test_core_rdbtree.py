"""Unit tests for the RDB-tree (Sec. 3.2)."""

import numpy as np
import pytest

from repro.core import rdb_leaf_order
from repro.core.rdbtree import RDBTree
from repro.hilbert import HilbertCurve


def build_tree(n=200, dim=4, order=8, m=5, seed=0):
    rng = np.random.default_rng(seed)
    curve = HilbertCurve(dim, order)
    coords = rng.integers(0, 1 << order, size=(n, dim))
    keys = curve.encode_batch(coords)
    ids = np.arange(n, dtype=np.int64)
    ref_dists = rng.uniform(0.0, 100.0, size=(n, m)).astype(np.float32)
    tree = RDBTree(curve, m)
    tree.bulk_build(keys, ids, ref_dists)
    return tree, keys, ids, ref_dists


class TestConstruction:
    def test_leaf_order_matches_eq4(self):
        curve = HilbertCurve(16, 8)
        tree = RDBTree(curve, 10)
        assert tree.leaf_order == rdb_leaf_order(16, 8, 10)

    def test_bulk_build_count_and_height(self):
        tree, *_ = build_tree(n=500)
        assert len(tree) == 500
        assert tree.height >= 1

    def test_misaligned_inputs_rejected(self):
        curve = HilbertCurve(4, 8)
        tree = RDBTree(curve, 5)
        with pytest.raises(ValueError):
            tree.bulk_build(np.asarray([1, 2], dtype=object),
                            np.asarray([0]), np.zeros((2, 5)))
        with pytest.raises(ValueError):
            tree.bulk_build(np.asarray([1], dtype=object),
                            np.asarray([0]), np.zeros((1, 3)))

    def test_unsorted_keys_accepted(self):
        """bulk_build sorts internally (Algo. 1 inserts by Hilbert key)."""
        curve = HilbertCurve(2, 4)
        tree = RDBTree(curve, 2)
        keys = np.asarray([9, 1, 5], dtype=object)
        tree.bulk_build(keys, np.asarray([0, 1, 2]),
                        np.zeros((3, 2), dtype=np.float32))
        assert len(tree) == 3


class TestCandidates:
    def test_returns_alpha_nearest_by_key(self):
        tree, keys, ids, _ = build_tree(n=300, seed=1)
        probe = int(keys[137])
        got_ids, got_dists = tree.candidates(probe, 20)
        assert got_ids.shape == (20,)
        assert got_dists.shape == (20, 5)
        expected = sorted(range(300), key=lambda i: abs(int(keys[i]) - probe))
        got_key_dists = sorted(abs(int(keys[i]) - probe) for i in got_ids)
        expected_dists = sorted(abs(int(keys[i]) - probe)
                                for i in expected[:20])
        assert got_key_dists == expected_dists

    def test_reference_distances_round_trip(self):
        tree, keys, ids, ref = build_tree(n=100, seed=2)
        got_ids, got_dists = tree.candidates(int(keys[0]), 100)
        for row, object_id in enumerate(got_ids):
            np.testing.assert_allclose(got_dists[row],
                                       ref[object_id], rtol=1e-6)

    def test_alpha_larger_than_tree(self):
        tree, *_ = build_tree(n=30)
        got_ids, _ = tree.candidates(0, 100)
        assert got_ids.shape == (30,)

    def test_io_counted(self):
        tree, keys, *_ = build_tree(n=500)
        tree.stats.reset()
        tree.candidates(int(keys[250]), 50)
        # Descent + ceil(50/leaf_order) leaves at minimum.
        assert tree.stats.page_reads >= tree.height


class TestInsert:
    def test_insert_then_retrieve(self):
        tree, keys, ids, ref = build_tree(n=50, seed=3)
        new_dists = np.linspace(0, 1, 5).astype(np.float32)
        tree.insert(12345, 999, new_dists)
        assert len(tree) == 51
        got_ids, got_dists = tree.candidates(12345, 1)
        assert got_ids[0] == 999
        np.testing.assert_allclose(got_dists[0], new_dists, rtol=1e-6)

    def test_insert_wrong_reference_count_rejected(self):
        tree, *_ = build_tree(m=5)
        with pytest.raises(ValueError):
            tree.insert(1, 1, np.zeros(3, dtype=np.float32))

    def test_size_grows_with_inserts(self):
        tree, *_ = build_tree(n=50)
        before = tree.size_bytes()
        for index in range(200):
            tree.insert(index * 7, 1000 + index,
                        np.zeros(5, dtype=np.float32))
        assert tree.size_bytes() > before
