"""Tests for the KNNIndex interface contract and miscellaneous edges."""

import numpy as np
import pytest

from repro.core import HDIndex, HDIndexParams
from repro.core.interface import BuildStats, KNNIndex, QueryStats
from repro.datasets import generate_uniform
from repro.eval import exact_knn, mean_average_precision
from repro.hilbert import GridQuantizer
from repro.storage import StorageError
from repro.storage.vectors import VectorHeapFile


class TestQueryStats:
    def test_as_dict_merges_extra(self):
        stats = QueryStats(time_sec=0.5, page_reads=7, candidates=3,
                           extra={"alpha": 128})
        as_dict = stats.as_dict()
        assert as_dict["time_sec"] == 0.5
        assert as_dict["page_reads"] == 7
        assert as_dict["alpha"] == 128

    def test_defaults_zeroed(self):
        stats = QueryStats()
        assert stats.page_reads == 0
        assert stats.extra == {}


class TestKNNIndexBase:
    def test_abstract_methods_raise(self):
        base = KNNIndex()
        with pytest.raises(NotImplementedError):
            base.build(np.zeros((1, 1)))
        with pytest.raises(NotImplementedError):
            base.query(np.zeros(1), 1)
        with pytest.raises(NotImplementedError):
            base.index_size_bytes()
        with pytest.raises(NotImplementedError):
            base.memory_bytes()

    def test_default_stats_objects(self):
        base = KNNIndex()
        assert isinstance(base.last_query_stats(), QueryStats)
        assert isinstance(base.build_stats(), BuildStats)

    def test_batch_query_pads_short_answers(self):
        class TwoAnswers(KNNIndex):
            def query(self, point, k):
                return (np.asarray([1, 2], dtype=np.int64),
                        np.asarray([0.1, 0.2]))

        ids, dists = TwoAnswers().batch_query(np.zeros((1, 4)), k=5)
        assert ids.shape == (1, 5)
        assert ids[0, :2].tolist() == [1, 2]
        assert ids[0, 2:].tolist() == [-1, -1, -1]
        assert np.isinf(dists[0, 2:]).all()


class TestCurseOfDimensionality:
    def test_uniform_high_dim_is_hard_for_everyone(self):
        """On i.i.d. uniform data distances concentrate (Sec. 1's
        dmax/dmin -> 1), so Hilbert-locality candidates lose their edge —
        the index should degrade towards small MAP while staying correct."""
        ds = generate_uniform(dim=64, n=600, num_queries=10, seed=0)
        index = HDIndex(HDIndexParams(
            num_trees=8, num_references=5, alpha=48, gamma=16,
            domain=(0.0, 1.0), seed=0))
        index.build(ds.data)
        k = 10
        true_ids, _ = exact_knn(ds.data, ds.queries, k)
        results = [index.query(q, k)[0] for q in ds.queries]
        score = mean_average_precision(list(true_ids), results, k)
        # Structured (clustered) workloads in other tests reach > 0.8;
        # uniform 64-dim data with a small candidate budget cannot.
        assert score < 0.8
        for ids in results:
            assert len(ids) == k   # still k valid, distinct answers
            assert len(set(ids.tolist())) == k


class TestMiscEdges:
    def test_quantizer_margin_expands_domain(self):
        data = np.asarray([[0.0], [10.0]])
        tight = GridQuantizer.from_data(data, order=4)
        loose = GridQuantizer.from_data(data, order=4, margin=0.1)
        assert loose.low < tight.low
        assert loose.high > tight.high

    def test_heap_restore_count_validation(self):
        heap = VectorHeapFile(dim=4, dtype=np.float32)
        heap.append_batch(np.zeros((3, 4), dtype=np.float32))
        heap.restore_count(2)
        assert len(heap) == 2
        with pytest.raises(ValueError):
            heap.restore_count(-1)
        with pytest.raises(StorageError):
            heap.restore_count(10**6)

    def test_hdindex_name_attributes(self):
        from repro.core import ShardRouter, ThreadedExecutor
        assert HDIndex().name == "HD-Index"
        assert HDIndex(executor=ThreadedExecutor(2)).name == \
            "HD-Index(parallel)"
        assert ShardRouter().name == "HD-Index(sharded)"

    def test_build_stats_extra_fields(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 10, size=(100, 8))
        index = HDIndex(HDIndexParams(num_trees=2, num_references=3,
                                      alpha=16, gamma=8, domain=(0, 10)))
        index.build(data)
        extra = index.build_stats().extra
        assert len(extra["leaf_orders"]) == 2
        assert len(extra["tree_heights"]) == 2
        assert all(height >= 1 for height in extra["tree_heights"])
