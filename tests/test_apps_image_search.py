"""Tests for the Borda-count image search application (Sec. 5.5, App. D)."""

import numpy as np
import pytest

from repro.apps import (
    DescriptorCorpus,
    borda_scores,
    image_overlap,
    make_image_corpus,
    search_images,
)
from repro.baselines import LinearScan
from repro.core import HDIndex, HDIndexParams


class TestCorpus:
    def test_shapes(self):
        corpus = make_image_corpus(num_images=5, descriptors_per_image=8,
                                   dim=16, seed=0)
        assert corpus.descriptors.shape == (40, 16)
        assert corpus.image_ids.shape == (40,)
        assert corpus.num_images == 5

    def test_descriptors_cluster_by_image(self):
        corpus = make_image_corpus(num_images=4, descriptors_per_image=10,
                                   dim=8, seed=1)
        from repro.distance import pairwise_euclidean
        matrix = pairwise_euclidean(corpus.descriptors, corpus.descriptors)
        same = matrix[corpus.image_ids[:, None] == corpus.image_ids[None, :]]
        cross = matrix[corpus.image_ids[:, None] != corpus.image_ids[None, :]]
        assert same.mean() < cross.mean()

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            DescriptorCorpus(np.zeros((5, 4)), np.zeros(4, dtype=np.int64))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            make_image_corpus(0, 5, 4)


class TestBorda:
    def test_equation_7_arithmetic(self):
        """One result list [d0, d1] with k=2: image of d0 gets 2, of d1
        gets 1."""
        image_ids = np.asarray([7, 3])
        scores = borda_scores([np.asarray([0, 1])], image_ids, k=2,
                              num_images=8)
        assert scores[7] == 2.0
        assert scores[3] == 1.0

    def test_accumulates_across_query_descriptors(self):
        image_ids = np.asarray([0, 1])
        results = [np.asarray([0]), np.asarray([0]), np.asarray([1])]
        scores = borda_scores(results, image_ids, k=1, num_images=2)
        assert scores[0] == 2.0
        assert scores[1] == 1.0

    def test_negative_padding_ignored(self):
        image_ids = np.asarray([0])
        scores = borda_scores([np.asarray([-1, 0])], image_ids, k=2,
                              num_images=1)
        assert scores[0] == 1.0   # position 2 -> k+1-2 = 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            borda_scores([], np.asarray([0]), k=0, num_images=1)


class TestSearchPipeline:
    @pytest.fixture(scope="class")
    def corpus(self):
        return make_image_corpus(num_images=8, descriptors_per_image=12,
                                 dim=16, seed=3)

    def test_exact_search_retrieves_own_image_first(self, corpus):
        scan = LinearScan()
        scan.build(corpus.descriptors)
        # Query with slightly perturbed descriptors of image 5.
        mask = corpus.image_ids == 5
        queries = corpus.descriptors[mask][:6] + 0.001
        top, scores = search_images(scan, corpus, queries,
                                    k_descriptors=5, k_images=3)
        assert top[0] == 5
        assert np.all(np.diff(scores) <= 0)

    def test_hdindex_matches_linear_scan_ranking(self, corpus):
        """The paper's Table 6 comparison: approximate methods should
        produce image rankings overlapping the linear-scan ground truth."""
        scan = LinearScan()
        scan.build(corpus.descriptors)
        hd = HDIndex(HDIndexParams(num_trees=4, num_references=4,
                                   alpha=64, gamma=32, domain=(0.0, 1.0)))
        hd.build(corpus.descriptors)
        mask = corpus.image_ids == 2
        queries = corpus.descriptors[mask][:6] + 0.001
        truth, _ = search_images(scan, corpus, queries, 5, 3)
        approx, _ = search_images(hd, corpus, queries, 5, 3)
        assert image_overlap(truth, approx) >= 2 / 3

    def test_single_query_descriptor_accepted(self, corpus):
        scan = LinearScan()
        scan.build(corpus.descriptors)
        top, _ = search_images(scan, corpus, corpus.descriptors[0],
                               k_descriptors=3, k_images=2)
        assert len(top) == 2

    def test_overlap_metric(self):
        assert image_overlap([1, 2, 3], [3, 2, 1]) == 1.0
        assert image_overlap([1, 2, 3], [1, 9, 8]) == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            image_overlap([], [1])
