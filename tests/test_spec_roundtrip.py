"""Cross-version snapshot compatibility across the IndexSpec redesign.

Both directions are pinned:

* **old -> new**: every legacy ``kind``-tagged snapshot layout written by
  the deprecated classes (including one with the ``spec`` section
  stripped, byte-exactly what pre-redesign releases wrote) reopens via
  ``repro.open()`` with byte-identical answers;
* **new -> old**: a spec-written snapshot still reopens through the
  legacy ``load_index()`` entry point.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro
from repro import (
    Execution,
    HDIndexParams,
    IndexSpec,
    ParallelHDIndex,
    ProcessPoolHDIndex,
    ShardedHDIndex,
    Topology,
    load_index,
    save_index,
)

DIM = 16
K = 6

#: The legacy constructors intentionally exercised here all warn.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(17)
    centers = rng.uniform(0.0, 100.0, size=(4, DIM))
    data = np.vstack([center + rng.normal(0.0, 3.0, size=(50, DIM))
                      for center in centers])
    data = data[rng.permutation(len(data))]
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.5, size=(6, DIM))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


def params(**overrides):
    defaults = dict(num_trees=3, hilbert_order=6, num_references=4,
                    alpha=64, gamma=16, domain=(0.0, 100.0), seed=5)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


def _strip_spec(directory) -> None:
    """Rewrite the snapshot metadata without the ``spec`` section — the
    byte layout pre-redesign releases wrote (they also had no spec-aware
    reader, so the legacy ``kind`` tag is all that survives)."""
    for name in ("meta.json", "manifest.json"):
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            continue
        with open(path) as handle:
            meta = json.load(handle)
        meta.pop("spec", None)
        with open(path, "w") as handle:
            json.dump(meta, handle, indent=2)
    for entry in os.listdir(directory):
        child = os.path.join(directory, entry)
        if os.path.isdir(child) and entry.startswith("shard_"):
            _strip_spec(child)


LEGACY_WRITERS = {
    "hdindex": lambda p: repro.HDIndex(p),
    "parallel": lambda p: ParallelHDIndex(p, num_workers=3),
    "sharded": lambda p: ShardedHDIndex(p, num_shards=2),
}


class TestLegacySnapshotsReopenViaOpen:
    @pytest.mark.parametrize("kind", ["hdindex", "parallel", "sharded",
                                      "process"])
    def test_kind_tagged_snapshot_reopens_byte_identically(
            self, workload, tmp_path, kind):
        data, queries = workload
        if kind == "process":
            index = ProcessPoolHDIndex(params(storage_dir=str(tmp_path)),
                                       num_workers=2)
        else:
            index = LEGACY_WRITERS[kind](params())
        index.build(data)
        save_index(index, tmp_path)
        expected = index.query_batch(queries, K)
        index.close()

        _strip_spec(tmp_path)  # exactly what the old releases wrote
        with open(os.path.join(
                tmp_path, "manifest.json" if kind == "sharded"
                else "meta.json")) as handle:
            meta = json.load(handle)
        assert "spec" not in meta
        assert meta["kind"] == kind

        reopened = repro.open(tmp_path)
        try:
            got = reopened.query_batch(queries, K)
            np.testing.assert_array_equal(got[0], expected[0])
            np.testing.assert_array_equal(got[1], expected[1])
            # The legacy kind maps onto the equivalent execution spec.
            expected_kind = {"hdindex": "sequential", "parallel": "thread",
                             "process": "process", "sharded": "sequential"}
            assert reopened.spec.execution.kind == expected_kind[kind]
        finally:
            reopened.close()

    def test_unknown_legacy_kind_still_rejected(self, workload, tmp_path):
        data, _ = workload
        index = repro.HDIndex(params())
        index.build(data)
        save_index(index, tmp_path)
        index.close()
        meta_path = os.path.join(tmp_path, "meta.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta.pop("spec")
        meta["kind"] = "quantum"
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        from repro.core import PersistenceError
        with pytest.raises(PersistenceError, match="kind"):
            repro.open(tmp_path)


class TestSpecSnapshotsReopenViaLegacyLoader:
    @pytest.mark.parametrize("spec_kwargs", [
        dict(),
        dict(execution=Execution(kind="thread", workers=2)),
        dict(topology=Topology(shards=2)),
        dict(topology=Topology(shards=2),
             execution=Execution(kind="process", workers=2),
             backend="mmap"),
    ], ids=["plain", "thread", "sharded", "sharded-process"])
    def test_spec_snapshot_loads_with_load_index(self, workload, tmp_path,
                                                 spec_kwargs):
        data, queries = workload
        spec = IndexSpec(params=params(), **spec_kwargs)
        index = repro.build(spec, data, storage_dir=tmp_path)
        expected = index.query_batch(queries, K)
        index.close()
        reloaded = load_index(tmp_path)  # the pre-redesign entry point
        try:
            got = reloaded.query_batch(queries, K)
            np.testing.assert_array_equal(got[0], expected[0])
            np.testing.assert_array_equal(got[1], expected[1])
        finally:
            reloaded.close()

    def test_spec_snapshot_keeps_legacy_kind_tag(self, workload, tmp_path):
        """New snapshots stay readable by old releases: the kind tag is
        still written alongside the spec."""
        data, _ = workload
        repro.build(IndexSpec(params=params(),
                              execution=Execution(kind="thread")),
                    data, storage_dir=tmp_path).close()
        with open(os.path.join(tmp_path, "meta.json")) as handle:
            meta = json.load(handle)
        assert meta["kind"] == "parallel"
        assert meta["spec"]["execution"]["kind"] == "thread"

    def test_legacy_shim_roundtrips_through_spim_snapshot(self, workload,
                                                          tmp_path):
        """A snapshot written via the new API reopens and answers
        identically when the deprecated shim classes query it after a
        plain load (mixed old/new code bases during migration)."""
        data, queries = workload
        index = repro.build(IndexSpec(params=params()), data,
                            storage_dir=tmp_path)
        expected = index.query_batch(queries, K)
        index.close()
        reopened = repro.open(tmp_path, execution="thread")
        try:
            got = reopened.query_batch(queries, K)
            np.testing.assert_array_equal(got[0], expected[0])
        finally:
            reopened.close()
