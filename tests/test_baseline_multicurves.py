"""Tests for the Multicurves baseline."""

import numpy as np
import pytest

from repro.baselines import Multicurves, MulticurvesUnsupportedError
from repro.eval import exact_knn, recall_at_k


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(61)
    centers = rng.uniform(0.0, 100.0, size=(6, 16))
    data = np.vstack([
        center + rng.normal(0.0, 2.0, size=(50, 16)) for center in centers])
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.3, size=(6, 16))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


@pytest.fixture(scope="module")
def built(workload):
    data, queries = workload
    index = Multicurves(num_curves=4, alpha=128, domain=(0.0, 100.0))
    index.build(data)
    return index, data, queries


class TestMulticurves:
    def test_high_recall_on_clustered_data(self, built):
        index, data, queries = built
        true_ids, _ = exact_knn(data, queries, k=10)
        recalls = [recall_at_k(true_ids[row], index.query(q, 10)[0], 10)
                   for row, q in enumerate(queries)]
        assert np.mean(recalls) > 0.8

    def test_results_sorted_unique(self, built):
        index, _, queries = built
        ids, dists = index.query(queries[0], 10)
        assert np.all(np.diff(dists) >= 0)
        assert len(set(ids.tolist())) == len(ids)

    def test_index_embeds_full_descriptors(self, built):
        """The design flaw the paper targets: each of the τ trees stores a
        full copy of every descriptor, so the index dwarfs the data."""
        index, data, _ = built
        assert index.index_size_bytes() > data.astype(np.float32).nbytes

    def test_no_descriptor_fetch_needed(self, built):
        """Candidates are ranked from leaf-embedded descriptors: all page
        reads come from the trees themselves."""
        index, _, queries = built
        reads_before = sum(t.stats.page_reads for t in index.trees)
        index.query(queries[0], 5)
        stats = index.last_query_stats()
        reads_after = sum(t.stats.page_reads for t in index.trees)
        assert stats.page_reads == reads_after - reads_before

    def test_alpha_split_across_curves(self, built):
        index, _, queries = built
        index.query(queries[0], 5)
        stats = index.last_query_stats()
        assert stats.candidates <= index.alpha

    def test_refuses_high_dimensionality(self):
        """One leaf entry must fit in a page — the paper's "NP" entries for
        SUN (ν=512) with 4 KB pages."""
        data = np.zeros((10, 1200))
        index = Multicurves(num_curves=8, alpha=64, page_size=4096)
        with pytest.raises(MulticurvesUnsupportedError):
            index.build(data)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Multicurves(num_curves=0)
        with pytest.raises(ValueError):
            Multicurves(alpha=0)
        index = Multicurves(num_curves=32)
        with pytest.raises(ValueError):
            index.build(np.zeros((5, 16)))

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            Multicurves().query(np.zeros(4), 1)
