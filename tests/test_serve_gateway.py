"""Tests for the asyncio TCP gateway over a ``QueryService``.

The acceptance contract of the network tier: many concurrent network
clients receive *byte-identical* answers to direct in-process calls;
deadlines produce typed ``DeadlineExceeded`` responses (never hangs);
overload produces typed ``ServiceOverloaded`` responses (never an event
loop blocked on a full queue); shutdown drains instead of dropping.

No pytest-asyncio in the environment: each test owns its event loop via
``asyncio.run``.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.core import HDIndex, HDIndexParams
from repro.serve import (
    AsyncServeClient,
    DeadlineExceeded,
    GatewayConfig,
    QueryService,
    ServeClient,
    ServeGateway,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
)

K = 10


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    centers = rng.uniform(0.0, 100.0, size=(5, 12))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(48, 12)) for center in centers])
    queries = data[rng.choice(len(data), 32, replace=False)] \
        + rng.normal(0.0, 0.5, size=(32, 12))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


@pytest.fixture(scope="module")
def built_index(workload):
    data, _ = workload
    index = HDIndex(HDIndexParams(num_trees=3, num_references=5, alpha=64,
                                  gamma=24, domain=(0.0, 100.0), seed=0))
    index.build(data)
    yield index
    index.close()


class SlowIndex:
    """Delegating wrapper that stalls every batch — deadline/overload
    tests need an index that is reliably slower than the budget."""

    def __init__(self, inner, delay):
        self._inner = inner
        self._delay = delay

    def query_batch(self, points, k, **overrides):
        time.sleep(self._delay)
        return self._inner.query_batch(points, k, **overrides)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def gateway_config(**overrides):
    defaults = dict(host="127.0.0.1", port=0, drain_timeout=5.0)
    defaults.update(overrides)
    return GatewayConfig(**defaults)


class TestParity:
    def test_eight_concurrent_async_clients_byte_identical(
            self, built_index, workload):
        """The headline acceptance test: >= 8 concurrent network clients,
        every answer byte-identical to a direct QueryService call."""
        _, queries = workload
        service = QueryService(built_index, ServiceConfig(max_batch=8))
        with service:
            expected = [service.query(q, K) for q in queries]

        service = QueryService(built_index, ServiceConfig(max_batch=8))
        num_clients = 8

        async def client(port, client_index, results):
            async with await AsyncServeClient.connect(
                    "127.0.0.1", port) as remote:
                for i in range(client_index, len(queries), num_clients):
                    results[i] = await remote.query(queries[i], k=K)

        async def main():
            gateway = ServeGateway(service, gateway_config())
            await gateway.start()
            results = [None] * len(queries)
            try:
                await asyncio.gather(*(
                    client(gateway.port, c, results)
                    for c in range(num_clients)))
            finally:
                await gateway.stop()
            return results

        results = asyncio.run(main())
        for got, want in zip(results, expected):
            assert got[0].tobytes() == want[0].tobytes()
            assert got[1].tobytes() == want[1].tobytes()

    def test_sync_client_parity_and_pipeline(self, built_index, workload):
        _, queries = workload
        with QueryService(built_index) as service:
            expected = service.query(queries[0], K)

        service = QueryService(built_index)
        gateway = ServeGateway(service, gateway_config())

        async def main():
            await gateway.start()
            return gateway.port

        loop = asyncio.new_event_loop()
        try:
            port = loop.run_until_complete(main())
            # Drive the sync client from outside the loop's thread.
            import threading
            got = {}

            def sync_calls():
                with ServeClient("127.0.0.1", port) as client:
                    assert client.ping()
                    got["answer"] = client.query(queries[0], k=K)

            thread = threading.Thread(target=sync_calls)
            thread.start()
            # Serve the loop while the sync client talks to it.
            deadline = time.monotonic() + 10
            while thread.is_alive() and time.monotonic() < deadline:
                loop.run_until_complete(asyncio.sleep(0.01))
            thread.join(timeout=1)
            assert not thread.is_alive(), "sync client hung"
            loop.run_until_complete(gateway.stop())
        finally:
            loop.close()
        assert got["answer"][0].tobytes() == expected[0].tobytes()
        assert got["answer"][1].tobytes() == expected[1].tobytes()

    def test_validation_error_crosses_typed(self, built_index, workload):
        _, queries = workload
        service = QueryService(built_index)

        async def main():
            gateway = ServeGateway(service, gateway_config())
            await gateway.start()
            try:
                async with await AsyncServeClient.connect(
                        "127.0.0.1", gateway.port) as remote:
                    with pytest.raises(ValueError):
                        await remote.query(queries[0], k=0)
            finally:
                await gateway.stop()

        asyncio.run(main())


class TestDeadlines:
    def test_deadline_exceeded_is_typed_not_a_hang(
            self, built_index, workload):
        _, queries = workload
        slow = SlowIndex(built_index, delay=0.5)
        service = QueryService(slow, ServiceConfig(max_batch=4))

        async def main():
            gateway = ServeGateway(service, gateway_config())
            await gateway.start()
            started = time.monotonic()
            try:
                async with await AsyncServeClient.connect(
                        "127.0.0.1", gateway.port) as remote:
                    with pytest.raises(DeadlineExceeded):
                        await remote.query(queries[0], k=K,
                                           deadline_ms=50.0)
            finally:
                await gateway.stop()
            return time.monotonic() - started

        elapsed = asyncio.run(main())
        assert elapsed < 5.0  # typed failure, not a hang

    def test_expired_in_queue_never_wastes_batch(self, built_index,
                                                 workload):
        """A request whose deadline lapses while queued is failed by the
        dispatcher, and stats record the expiry."""
        _, queries = workload
        slow = SlowIndex(built_index, delay=0.25)
        service = QueryService(slow, ServiceConfig(max_batch=1))

        async def main():
            gateway = ServeGateway(service, gateway_config())
            await gateway.start()
            try:
                async with await AsyncServeClient.connect(
                        "127.0.0.1", gateway.port) as remote:
                    blocker = asyncio.create_task(
                        remote.query(queries[0], k=K))
                    await asyncio.sleep(0.05)  # blocker holds the batch
                    with pytest.raises(DeadlineExceeded):
                        await remote.query(queries[1], k=K,
                                           deadline_ms=20.0)
                    await blocker
                stats = gateway.stats()
            finally:
                await gateway.stop()
            return stats

        stats = asyncio.run(main())
        assert stats["gateway"]["deadline_exceeded"] >= 1

    def test_default_deadline_applies(self, built_index, workload):
        _, queries = workload
        slow = SlowIndex(built_index, delay=0.5)
        service = QueryService(slow, ServiceConfig(max_batch=4))

        async def main():
            gateway = ServeGateway(service, gateway_config(
                default_deadline_ms=50.0))
            await gateway.start()
            try:
                async with await AsyncServeClient.connect(
                        "127.0.0.1", gateway.port) as remote:
                    with pytest.raises(DeadlineExceeded):
                        await remote.query(queries[0], k=K)
            finally:
                await gateway.stop()

        asyncio.run(main())


class TestOverload:
    def test_slow_consumer_sheds_typed_never_blocks(self, built_index,
                                                    workload):
        """A burst past capacity gets typed ServiceOverloaded answers
        while admitted requests complete — the loop never blocks."""
        _, queries = workload
        slow = SlowIndex(built_index, delay=0.2)
        service = QueryService(
            slow, ServiceConfig(max_batch=1, max_pending=2))

        async def main():
            gateway = ServeGateway(service, gateway_config(max_inflight=3))
            await gateway.start()
            outcomes = []
            try:
                async with await AsyncServeClient.connect(
                        "127.0.0.1", gateway.port) as remote:
                    async def one(i):
                        try:
                            return await remote.query(queries[i], k=K,
                                                      deadline_ms=5000.0)
                        except (ServiceOverloaded, DeadlineExceeded) as e:
                            return e
                    outcomes = await asyncio.gather(
                        *(one(i) for i in range(12)))
                stats = gateway.stats()
            finally:
                await gateway.stop()
            return outcomes, stats

        outcomes, stats = asyncio.run(main())
        shed = [o for o in outcomes if isinstance(o, ServiceOverloaded)]
        answered = [o for o in outcomes if isinstance(o, tuple)]
        assert len(shed) >= 12 - 3 - 2  # beyond inflight+queue capacity
        assert answered, "admitted requests must still complete"
        assert stats["gateway"]["shed"] == len(shed)


class TestStatsAndLifecycle:
    def test_stats_rpc_reports_percentiles_and_service(
            self, built_index, workload):
        _, queries = workload
        service = QueryService(built_index, ServiceConfig(max_batch=4))

        async def main():
            gateway = ServeGateway(service, gateway_config())
            await gateway.start()
            try:
                async with await AsyncServeClient.connect(
                        "127.0.0.1", gateway.port) as remote:
                    for q in queries[:6]:
                        await remote.query(q, k=K)
                    return await remote.stats()
            finally:
                await gateway.stop()

        stats = asyncio.run(main())
        gw, service_stats = stats["gateway"], stats["service"]
        assert gw["queries"] == 6
        assert gw["inflight"] == 0
        assert gw["p50_ms"] > 0 and gw["p99_ms"] >= gw["p50_ms"]
        assert service_stats["queries"] == 6
        assert service_stats["batches"] >= 1  # batch occupancy visible

    def test_unknown_op_is_a_typed_protocol_error(self, built_index):
        service = QueryService(built_index)

        async def main():
            gateway = ServeGateway(service, gateway_config())
            await gateway.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port)
                from repro.serve import protocol
                writer.write(protocol.encode_frame(
                    {"op": "explode", "id": 1}))
                await writer.drain()
                response = await protocol.read_frame(reader)
                writer.close()
                await writer.wait_closed()
                return response
            finally:
                await gateway.stop()

        response = asyncio.run(main())
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"

    def test_graceful_stop_drains_and_sheds_new_work(
            self, built_index, workload):
        _, queries = workload
        slow = SlowIndex(built_index, delay=0.15)
        service = QueryService(slow, ServiceConfig(max_batch=1))

        async def main():
            gateway = ServeGateway(service, gateway_config())
            await gateway.start()
            async with await AsyncServeClient.connect(
                    "127.0.0.1", gateway.port) as remote:
                inflight = asyncio.create_task(
                    remote.query(queries[0], k=K))
                await asyncio.sleep(0.05)
                stopper = asyncio.create_task(gateway.stop())
                # The in-flight request is answered, not dropped.
                ids, dists = await inflight
                assert len(ids) == K
                await stopper
            # Service is stopped underneath: no orphan threads.
            with pytest.raises(ServiceClosed):
                service.submit(queries[0], K)

        asyncio.run(main())

    def test_corrupt_frame_drops_connection_only(self, built_index,
                                                 workload):
        """A client sending garbage loses its connection; the gateway
        keeps serving others."""
        _, queries = workload
        service = QueryService(built_index)

        async def main():
            gateway = ServeGateway(service, gateway_config())
            await gateway.start()
            try:
                import struct
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port)
                writer.write(struct.pack("!I", 2 ** 31))  # absurd length
                await writer.drain()
                got = await reader.read(1)  # server closes on us
                assert got == b""
                writer.close()
                await writer.wait_closed()
                async with await AsyncServeClient.connect(
                        "127.0.0.1", gateway.port) as remote:
                    ids, _ = await remote.query(queries[0], k=K)
                    assert len(ids) == K
            finally:
                await gateway.stop()

        asyncio.run(main())
