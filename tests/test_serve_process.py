"""Process-mode serving: parity, fault injection and lifecycle hygiene.

The contracts under test, in order of how expensive they are to get wrong
in production:

* a worker process dying mid-batch fails every pending future **fast**
  with a typed :class:`WorkerCrashed` — never a hang — and the pool
  recovers for the next batch without operator action;
* a wedged worker (task past ``worker_timeout``) surfaces as
  :class:`WorkerTimeout`, the stuck pool is killed, and serving resumes;
* ``close()`` is idempotent and safe to race against concurrent
  submitters;
* and, throughout, answers stay byte-identical to the sequential path.

Crash/timeout injection uses :data:`repro.core.procpool._FAULT_HOOK`: the
parent sets it *before* the pool forks, so every worker inherits the hook
and runs it at task entry — a deterministic SIGKILL/wedge in the middle of
a dispatched batch.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

import repro.core.procpool as procpool
from repro.core import (
    Execution,
    HDIndex,
    HDIndexParams,
    IndexSpec,
    ProcessPoolError,
    ShardRouter,
    SnapshotWorkerPool,
    WorkerCrashed,
    WorkerTimeout,
    create_index,
    open_index,
    save_index,
)
from repro.serve import QueryService, ServiceClosed

K = 5
#: Upper bound on any single future wait; a hang fails the test instead of
#: freezing the suite (CI adds pytest-timeout on top).
WAIT = 60.0

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault hook relies on fork-inherited worker state")


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(55)
    centers = rng.uniform(0.0, 100.0, size=(5, 16))
    data = np.vstack([center + rng.normal(0.0, 3.0, size=(64, 16))
                      for center in centers])
    queries = data[rng.choice(len(data), 16, replace=False)] \
        + rng.normal(0.0, 0.5, size=(16, 16))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


def _params(directory=None):
    return HDIndexParams(num_trees=4, hilbert_order=6, num_references=5,
                         alpha=48, gamma=12, domain=(0.0, 100.0), seed=1,
                         storage_dir=directory)


@pytest.fixture(scope="module")
def snapshot(workload, tmp_path_factory):
    data, queries = workload
    directory = tmp_path_factory.mktemp("proc-snap")
    index = HDIndex(_params(str(directory)))
    index.build(data)
    save_index(index, directory)
    expected = [index.query(q, K) for q in queries]
    index.close()
    return directory, expected


@pytest.fixture
def clear_fault_hook():
    yield
    procpool._FAULT_HOOK = None


class TestProcessModeParity:
    def test_served_answers_match_sequential(self, workload, snapshot):
        _, queries = workload
        directory, expected = snapshot
        with QueryService.from_snapshot(directory, execution=Execution(
                                            kind="process", workers=2),
                                        max_batch=8, max_wait_ms=2.0) as service:
            futures = [service.submit(q, K) for q in queries]
            for future, (ids, dists) in zip(futures, expected):
                got_ids, got_dists = future.result(timeout=WAIT)
                np.testing.assert_array_equal(got_ids, ids)
                np.testing.assert_array_equal(got_dists, dists)

    def test_sharded_snapshot_served_in_process_mode(self, workload,
                                                     tmp_path):
        """Workers bootstrap whole sharded snapshots too (each worker
        reopens every shard via mmap and answers full queries)."""
        data, queries = workload
        sharded = ShardRouter(_params(), 2)
        sharded.build(data)
        save_index(sharded, tmp_path)
        expected = [sharded.query(q, K) for q in queries[:6]]
        sharded.close()
        with QueryService.from_snapshot(tmp_path, execution=Execution(
                                            kind="process", workers=2),
                                        max_batch=4) as service:
            for q, (ids, dists) in zip(queries, expected):
                got_ids, got_dists = service.query(q, K, timeout=WAIT)
                np.testing.assert_array_equal(got_ids, ids)
                np.testing.assert_array_equal(got_dists, dists)

    def test_process_service_over_process_sharded_snapshot(self, workload,
                                                           tmp_path):
        """Regression: a snapshot whose recorded spec is sharded x process
        must not recursively fork grandchildren inside service workers —
        the worker-side bootstrap demotes every shard's executor to
        sequential before answering."""
        from repro.core import IndexSpec, Topology
        from repro.core import build as build_spec
        data, queries = workload
        spec = IndexSpec(params=_params(),
                         topology=Topology(shards=2),
                         execution=Execution(kind="process", workers=2),
                         backend="mmap")
        index = build_spec(spec, data, storage_dir=tmp_path)
        expected = [index.query(q, K) for q in queries[:4]]
        index.close()
        with QueryService.from_snapshot(
                tmp_path, execution=Execution(kind="process", workers=2,
                                              worker_timeout=60.0),
                max_batch=4) as service:
            for q, (ids, dists) in zip(queries, expected):
                got_ids, got_dists = service.query(q, K, timeout=WAIT)
                np.testing.assert_array_equal(got_ids, ids)
                np.testing.assert_array_equal(got_dists, dists)

    def test_process_mode_requires_snapshot(self, workload):
        data, _ = workload
        index = HDIndex(_params())
        index.build(data)
        try:
            with pytest.raises(ValueError, match="snapshot"):
                QueryService(index, execution="process")
        finally:
            index.close()

    def test_stale_snapshot_rejected(self, workload, tmp_path):
        """A live index mutated after its last save must not be silently
        served from the old snapshot: workers would answer from stale
        data, so construction fails loudly instead."""
        data, _ = workload
        index = HDIndex(_params(str(tmp_path)))
        index.build(data)
        save_index(index, tmp_path)
        try:
            QueryService(index, execution="process", workers=1)  # fresh: fine
            index.insert(np.full(16, 1.0))
            with pytest.raises(ValueError, match="save_index"):
                QueryService(index, execution="process", workers=1)
            with pytest.raises(ValueError, match="save_index"):
                QueryService(index, execution="process", workers=1,
                             snapshot_dir=tmp_path)
            save_index(index, tmp_path)  # re-snapshot clears the drift
            QueryService(index, execution="process", workers=1)
        finally:
            index.close()

    def test_unknown_execution_rejected(self, workload):
        index = HDIndex(_params())
        with pytest.raises(ValueError, match="execution kind"):
            QueryService(index, execution="fiber")


@needs_fork
class TestWorkerCrash:
    def test_crash_mid_batch_fails_futures_fast_and_pool_recovers(
            self, workload, snapshot, clear_fault_hook):
        _, queries = workload
        directory, expected = snapshot
        procpool._FAULT_HOOK = lambda: os.kill(os.getpid(), signal.SIGKILL)
        service = QueryService.from_snapshot(
            directory, execution=Execution(kind="process", workers=2),
            max_batch=16, max_wait_ms=20.0).start()
        try:
            futures = [service.submit(q, K) for q in queries]
            started = time.perf_counter()
            for future in futures:
                with pytest.raises(WorkerCrashed):
                    future.result(timeout=WAIT)
            elapsed = time.perf_counter() - started
            # Fail fast: the broken-pool signal, not a timeout, fails the
            # batch (WAIT would be 60s; the whole batch settles in well
            # under a tenth of that).
            assert elapsed < WAIT / 10
            # The typed error is catchable as the tier's base class.
            assert issubclass(WorkerCrashed, ProcessPoolError)

            # Next batch: the pool restarts with fresh (un-hooked) workers
            # and serves byte-identical answers again.
            procpool._FAULT_HOOK = None
            ids, dists = service.query(queries[0], K, timeout=WAIT)
            np.testing.assert_array_equal(ids, expected[0][0])
            np.testing.assert_array_equal(dists, expected[0][1])
        finally:
            procpool._FAULT_HOOK = None
            service.close()

    def test_crash_on_direct_process_index_raises_typed(
            self, workload, snapshot, clear_fault_hook):
        """The engine-level tree-scan path fails typed too, not just the
        service."""
        _, queries = workload
        directory, expected = snapshot
        index = open_index(directory,
                           execution=Execution(kind="process", workers=2))
        try:
            procpool._FAULT_HOOK = lambda: os.kill(os.getpid(),
                                                   signal.SIGKILL)
            with pytest.raises(WorkerCrashed):
                index.query(queries[0], K)
            procpool._FAULT_HOOK = None
            ids, _ = index.query(queries[0], K)
            np.testing.assert_array_equal(ids, expected[0][0])
        finally:
            procpool._FAULT_HOOK = None
            index.close()


@needs_fork
class TestWorkerTimeout:
    def test_wedged_worker_surfaces_timeout_and_recovers(
            self, workload, snapshot, clear_fault_hook):
        _, queries = workload
        directory, expected = snapshot
        procpool._FAULT_HOOK = lambda: time.sleep(30)
        service = QueryService.from_snapshot(
            directory, execution=Execution(kind="process", workers=1,
                                           worker_timeout=0.75),
            max_batch=4, max_wait_ms=0.0).start()
        try:
            started = time.perf_counter()
            with pytest.raises(WorkerTimeout):
                service.query(queries[0], K, timeout=WAIT)
            # The guard fired at ~worker_timeout, not after the 30s wedge.
            assert time.perf_counter() - started < 10.0
            procpool._FAULT_HOOK = None
            ids, _ = service.query(queries[1], K, timeout=WAIT)
            np.testing.assert_array_equal(ids, expected[1][0])
        finally:
            procpool._FAULT_HOOK = None
            service.close()


class TestCloseIdempotence:
    def test_close_under_concurrent_submitters(self, workload, snapshot):
        """Racing close() against a swarm of submitters: every future
        either completes or fails with ServiceClosed; close() stays
        idempotent; nothing hangs."""
        _, queries = workload
        directory, _ = snapshot
        service = QueryService.from_snapshot(
            directory, execution=Execution(kind="process", workers=2),
            max_batch=8, max_wait_ms=1.0).start()
        outcomes: list[str] = []
        lock = threading.Lock()

        def submitter(offset):
            for i in range(20):
                q = queries[(offset + i) % len(queries)]
                try:
                    service.submit(q, K).result(timeout=WAIT)
                    outcome = "answered"
                except ServiceClosed:
                    outcome = "closed"
                except ProcessPoolError:
                    outcome = "pool"
                with lock:
                    outcomes.append(outcome)

        threads = [threading.Thread(target=submitter, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.15)
        closers = [threading.Thread(target=service.close)
                   for _ in range(3)]
        for closer in closers:
            closer.start()
        for thread in threads + closers:
            thread.join(timeout=WAIT)
            assert not thread.is_alive(), "a thread hung across close()"
        service.close()  # still idempotent after the race
        assert outcomes.count("answered") >= 1
        assert outcomes.count("pool") == 0
        assert all(o in ("answered", "closed") for o in outcomes)

    def test_close_is_idempotent_when_never_started(self, workload,
                                                    snapshot):
        directory, _ = snapshot
        service = QueryService.from_snapshot(directory,
                                             execution="process", workers=1)
        service.close()
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(np.zeros(16), K)


class TestPoolValidation:
    def test_rejects_bad_arguments(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotWorkerPool(tmp_path, num_workers=0)
        with pytest.raises(ValueError):
            SnapshotWorkerPool(tmp_path, backend="tape")
        with pytest.raises(ValueError):
            SnapshotWorkerPool(tmp_path, timeout=0)

    def test_unbound_pool_raises_typed(self):
        pool = SnapshotWorkerPool(None, num_workers=1)
        with pytest.raises(ProcessPoolError, match="snapshot"):
            pool.run_query_batch(np.zeros((1, 4)), 1)
        pool.close()

    def test_closed_pool_raises(self, snapshot):
        directory, _ = snapshot
        pool = SnapshotWorkerPool(directory, num_workers=1)
        pool.close()
        with pytest.raises(ProcessPoolError):
            pool.run_query_batch(np.zeros((1, 16)), 1)

    def test_process_index_requires_storage_dir(self):
        with pytest.raises(ValueError, match="storage_dir"):
            create_index(IndexSpec(params=HDIndexParams(num_trees=2),
                                   execution=Execution(kind="process")))

    def test_sharded_snapshot_reopens_with_process_execution(
            self, workload, tmp_path):
        """The spec redesign made sharded x process expressible: a sharded
        snapshot reopens with per-shard worker pools."""
        data, queries = workload
        sharded = ShardRouter(_params(), 2)
        sharded.build(data)
        save_index(sharded, tmp_path)
        expected = [sharded.query(q, K) for q in queries[:3]]
        sharded.close()
        reopened = open_index(tmp_path,
                              execution=Execution(kind="process", workers=2))
        try:
            assert reopened.execution.kind == "process"
            for q, (ids, dists) in zip(queries, expected):
                got_ids, got_dists = reopened.query(q, K)
                np.testing.assert_array_equal(got_ids, ids)
                np.testing.assert_array_equal(got_dists, dists)
        finally:
            reopened.close()


class TestProcessKindPersistence:
    def test_process_snapshot_reopens_as_process_kind(self, workload,
                                                      tmp_path):
        from repro.core import load_index
        data, queries = workload
        index = create_index(IndexSpec(
            params=_params(str(tmp_path)),
            execution=Execution(kind="process", workers=2)))
        index.build(data)
        expected = index.query_batch(queries[:4], K)
        index.close()
        reopened = load_index(tmp_path)
        try:
            # The spec reconstructs process execution without the
            # deprecated class: workers bootstrap from this directory.
            assert isinstance(reopened, HDIndex)
            assert reopened.spec.execution.kind == "process"
            assert reopened.spec.execution.workers == 2
            assert reopened.snapshot_dir == str(tmp_path)
            got = reopened.query_batch(queries[:4], K)
            np.testing.assert_array_equal(got[0], expected[0])
            np.testing.assert_array_equal(got[1], expected[1])
        finally:
            reopened.close()

    def test_insert_resyncs_worker_snapshot(self, workload, tmp_path):
        """Workers must see inserted points: the snapshot is re-persisted
        and the pool restarted lazily on the next query."""
        data, queries = workload
        index = create_index(IndexSpec(
            params=_params(str(tmp_path)),
            execution=Execution(kind="process", workers=2)))
        index.build(data)
        probe = np.full(16, 50.0)
        new_id = index.insert(probe)
        ids, dists = index.query(probe, 1)
        assert ids[0] == new_id and dists[0] < 1e-5
        # Deletes are parent-side (survivor merge filters them): no resync.
        index.delete(int(new_id))
        ids, _ = index.query(probe, 1)
        assert new_id not in ids
        index.close()
