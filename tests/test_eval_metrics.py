"""Unit and property tests for the quality metrics (Defs. 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    approximation_ratio,
    average_precision,
    mean_average_precision,
    mean_ratio,
    recall_at_k,
)


class TestApproximationRatio:
    def test_perfect_answer_is_one(self):
        true = np.asarray([1.0, 2.0, 3.0])
        assert approximation_ratio(true, true) == pytest.approx(1.0)

    def test_definition_1_arithmetic(self):
        true = np.asarray([1.0, 2.0])
        got = np.asarray([2.0, 2.0])
        # (2/1 + 2/2)/2 = 1.5
        assert approximation_ratio(true, got) == pytest.approx(1.5)

    def test_zero_true_distance_skipped(self):
        true = np.asarray([0.0, 1.0])
        got = np.asarray([0.5, 2.0])
        assert approximation_ratio(true, got) == pytest.approx(2.0)

    def test_both_zero_counts_as_ideal(self):
        true = np.asarray([0.0, 1.0])
        got = np.asarray([0.0, 1.0])
        assert approximation_ratio(true, got) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            approximation_ratio(np.asarray([1.0]), np.asarray([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            approximation_ratio(np.asarray([]), np.asarray([]))

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_at_least_one_when_results_worse(self, true_list):
        true = np.sort(np.asarray(true_list))
        got = true * 1.3
        assert approximation_ratio(true, got) >= 1.0


class TestAveragePrecision:
    def test_paper_example_1_first_ordering(self):
        """{o4, o3, o2} against truth {o1, o2, o3} -> (0 + 1/2 + 2/3)/3."""
        ap = average_precision(["o1", "o2", "o3"], ["o4", "o3", "o2"])
        assert ap == pytest.approx((0 + 1 / 2 + 2 / 3) / 3, abs=1e-9)

    def test_paper_example_1_second_ordering(self):
        """{o3, o2, o4} -> (1 + 1 + 0)/3 = 0.67."""
        ap = average_precision(["o1", "o2", "o3"], ["o3", "o2", "o4"])
        assert ap == pytest.approx(2 / 3, abs=1e-9)

    def test_paper_example_1_map(self):
        first = average_precision(["o1", "o2", "o3"], ["o4", "o3", "o2"])
        second = average_precision(["o1", "o2", "o3"], ["o3", "o2", "o4"])
        assert (first + second) / 2 == pytest.approx(0.5278, abs=1e-3)

    def test_perfect_ranking(self):
        assert average_precision([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_completely_wrong(self):
        assert average_precision([1, 2, 3], [7, 8, 9]) == 0.0

    def test_rank_sensitivity(self):
        """Same set, better order -> higher AP (the argument for MAP)."""
        good = average_precision([1, 2, 3, 4], [1, 2, 9, 4])
        bad = average_precision([1, 2, 3, 4], [9, 1, 2, 4])
        assert good > bad

    def test_short_result_list_penalised(self):
        assert average_precision([1, 2, 3, 4], [1]) < 1.0

    def test_k_override(self):
        ap = average_precision([1, 2, 3, 4, 5], [1, 2], k=2)
        assert ap == pytest.approx(1.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            average_precision([1], [1], k=0)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=15,
                    unique=True),
           st.lists(st.integers(0, 30), min_size=1, max_size=15,
                    unique=True))
    @settings(max_examples=80, deadline=None)
    def test_bounded_zero_one(self, true_ids, result_ids):
        ap = average_precision(true_ids, result_ids, k=len(true_ids))
        assert 0.0 <= ap <= 1.0

    @given(st.lists(st.integers(0, 50), min_size=2, max_size=12,
                    unique=True))
    @settings(max_examples=50, deadline=None)
    def test_identity_ranking_is_optimal(self, ids):
        perfect = average_precision(ids, ids)
        assert perfect == pytest.approx(1.0)
        shuffled = list(reversed(ids))
        assert average_precision(ids, shuffled) <= 1.0


class TestMAP:
    def test_mean_over_queries(self):
        truth = [[1, 2], [3, 4]]
        results = [[1, 2], [9, 9]]
        assert mean_average_precision(truth, results) == pytest.approx(0.5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            mean_average_precision([[1]], [[1], [2]])

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            mean_average_precision([], [])


class TestRecall:
    def test_full_overlap(self):
        assert recall_at_k([1, 2, 3], [3, 1, 2]) == 1.0

    def test_partial_overlap(self):
        assert recall_at_k([1, 2, 3, 4], [1, 2, 9, 9]) == 0.5

    def test_k_slice(self):
        assert recall_at_k([1, 2, 3, 4], [1, 5, 6, 7], k=2) == 0.5

    def test_recall_ignores_order_but_ap_does_not(self):
        """Def. 2 is set-membership based, so AP only drops when an
        irrelevant item pushes the relevant ones to later ranks."""
        truth = [1, 2, 3, 4]
        early_miss = [9, 1, 2, 3]
        late_miss = [1, 2, 3, 9]
        assert recall_at_k(truth, early_miss) == recall_at_k(truth, late_miss)
        assert average_precision(truth, late_miss) > average_precision(
            truth, early_miss)


class TestMeanRatio:
    def test_average_of_definition_1(self):
        truths = [np.asarray([1.0]), np.asarray([1.0])]
        results = [np.asarray([1.0]), np.asarray([3.0])]
        assert mean_ratio(truths, results) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ratio([], [])
