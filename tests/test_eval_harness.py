"""Unit tests for the experiment harness and memory helpers."""

import numpy as np
import pytest

from repro.baselines import LinearScan
from repro.core import HDIndex, HDIndexParams
from repro.eval import (
    GroundTruth,
    evaluate_index,
    format_bytes,
    format_table,
    run_comparison,
)
from repro.eval.memory import array_bytes


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    centers = rng.uniform(0.0, 10.0, size=(4, 8))
    data = np.vstack([c + rng.normal(0.0, 0.3, size=(50, 8))
                      for c in centers])
    queries = data[:5] + rng.normal(0.0, 0.05, size=(5, 8))
    return data, queries


class TestEvaluateIndex:
    def test_exact_method_scores_perfectly(self, workload):
        data, queries = workload
        result = evaluate_index(LinearScan(), data, queries, k=5,
                                dataset_name="toy")
        assert result.map_at_k == pytest.approx(1.0)
        assert result.ratio_at_k == pytest.approx(1.0)
        assert result.recall_at_k == pytest.approx(1.0)
        assert result.method == "LinearScan"
        assert result.dataset == "toy"
        assert result.avg_query_time_sec > 0
        assert result.avg_page_reads > 0

    def test_hdindex_measured(self, workload):
        data, queries = workload
        index = HDIndex(HDIndexParams(num_trees=4, alpha=64, gamma=16,
                                      num_references=4, domain=(0, 10)))
        result = evaluate_index(index, data, queries, k=5)
        assert 0.0 <= result.map_at_k <= 1.0
        assert result.index_size_bytes > 0
        assert result.build_time_sec > 0

    def test_reuses_shared_ground_truth(self, workload):
        data, queries = workload
        cache = GroundTruth(data, queries, max_k=5)
        result = evaluate_index(LinearScan(), data, queries, k=5,
                                ground_truth=cache)
        assert result.map_at_k == pytest.approx(1.0)

    def test_row_rendering(self, workload):
        data, queries = workload
        result = evaluate_index(LinearScan(), data, queries, k=3)
        row = result.row()
        assert row["MAP@k"] == 1.0
        assert "index_size" in row


class TestRunComparison:
    def test_multiple_methods_share_truth(self, workload):
        data, queries = workload
        results = run_comparison({
            "Linear": LinearScan,
            "HD-Index": lambda: HDIndex(HDIndexParams(
                num_trees=4, alpha=64, gamma=16, num_references=4,
                domain=(0, 10))),
        }, data, queries, k=5)
        assert [r.method for r in results] == ["Linear", "HD-Index"]
        assert results[0].map_at_k == pytest.approx(1.0)

    def test_failing_method_marked_np(self, workload):
        data, queries = workload

        class Broken(LinearScan):
            def build(self, data):
                raise ValueError("cannot build")

        results = run_comparison({"Broken": Broken}, data, queries, k=3)
        assert np.isnan(results[0].map_at_k)
        assert results[0].extra["error"].startswith("NP")

    def test_format_table_alignment(self, workload):
        data, queries = workload
        results = run_comparison({"Linear": LinearScan}, data, queries, k=3)
        table = format_table(results)
        lines = table.splitlines()
        assert len(lines) >= 3
        assert "method" in lines[0]
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_empty(self):
        assert format_table([]) == "(no results)"

    def test_format_table_column_subset(self, workload):
        data, queries = workload
        results = run_comparison({"Linear": LinearScan}, data, queries, k=3)
        table = format_table(results, columns=["method", "MAP@k"])
        assert "query_ms" not in table


class TestMemoryHelpers:
    def test_format_bytes_units(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024**2) == "3.0 MB"
        assert format_bytes(5 * 1024**3) == "5.0 GB"
        assert format_bytes(2 * 1024**4) == "2.0 TB"

    def test_format_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_array_bytes_skips_none(self):
        a = np.zeros(10, dtype=np.float64)
        assert array_bytes(a, None, a) == 160
        assert array_bytes() == 0
