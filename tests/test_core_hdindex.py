"""Integration tests for the full HD-Index (Algo. 1 + Algo. 2)."""

import numpy as np
import pytest

from repro.core import HDIndex, HDIndexParams
from repro.eval import exact_knn, mean_average_precision


def small_params(**overrides):
    defaults = dict(num_trees=4, hilbert_order=8, num_references=5,
                    alpha=128, gamma=32, domain=(0.0, 100.0), seed=0)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


@pytest.fixture(scope="module")
def built_index(tiny_clustered_module):
    data, queries = tiny_clustered_module
    index = HDIndex(small_params())
    index.build(data)
    return index, data, queries


@pytest.fixture(scope="module")
def tiny_clustered_module():
    rng = np.random.default_rng(77)
    centers = rng.uniform(0.0, 100.0, size=(6, 16))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(60, 16)) for center in centers])
    queries = data[rng.choice(len(data), 8, replace=False)] \
        + rng.normal(0.0, 0.5, size=(8, 16))
    return np.clip(data, 0.0, 100.0), np.clip(queries, 0.0, 100.0)


class TestBuild:
    def test_structure_counts(self, built_index):
        index, data, _ = built_index
        assert len(index.trees) == 4
        assert all(len(tree) == len(data) for tree in index.trees)
        assert index.count == len(data)

    def test_build_stats_populated(self, built_index):
        index, _, _ = built_index
        stats = index.build_stats()
        assert stats.time_sec > 0
        assert stats.page_writes > 0
        assert stats.peak_memory_bytes > 0
        assert len(stats.extra["leaf_orders"]) == 4

    def test_index_size_is_sum_of_trees(self, built_index):
        index, _, _ = built_index
        assert index.index_size_bytes() == sum(
            t.size_bytes() for t in index.trees)
        assert index.total_size_bytes() > index.index_size_bytes()

    def test_too_many_trees_rejected(self):
        index = HDIndex(small_params(num_trees=64))
        with pytest.raises(ValueError):
            index.build(np.zeros((10, 8)))

    def test_empty_data_rejected(self):
        index = HDIndex(small_params())
        with pytest.raises(ValueError):
            index.build(np.zeros((0, 16)))

    def test_non_2d_rejected(self):
        index = HDIndex(small_params())
        with pytest.raises(ValueError):
            index.build(np.zeros(16))

    def test_random_partition_scheme_builds(self, tiny_clustered_module):
        data, queries = tiny_clustered_module
        index = HDIndex(small_params(partition_scheme="random"))
        index.build(data)
        ids, _ = index.query(queries[0], 5)
        assert len(ids) == 5


class TestQuery:
    def test_returns_k_sorted_results(self, built_index):
        index, data, queries = built_index
        ids, dists = index.query(queries[0], 10)
        assert len(ids) == 10
        assert np.all(np.diff(dists) >= 0)
        assert len(set(ids.tolist())) == 10

    def test_high_recall_on_clustered_data(self, built_index):
        index, data, queries = built_index
        k = 10
        true_ids, _ = exact_knn(data, queries, k)
        results = [index.query(q, k)[0] for q in queries]
        score = mean_average_precision(list(true_ids), results, k)
        assert score > 0.8, f"MAP@10 too low: {score}"

    def test_query_on_database_point_finds_itself(self, built_index):
        index, data, _ = built_index
        ids, dists = index.query(data[17], 1)
        assert ids[0] == 17
        assert dists[0] < 1e-3   # float32 storage round-off only

    def test_ptolemaic_path(self, built_index):
        index, data, queries = built_index
        ids_tri, _ = index.query(queries[0], 5, use_ptolemaic=False)
        ids_ptol, _ = index.query(queries[0], 5, use_ptolemaic=True)
        assert len(ids_ptol) == 5
        stats = index.last_query_stats()
        assert stats.extra["ptolemaic"] is True

    def test_overrides_change_candidate_counts(self, built_index):
        index, _, queries = built_index
        index.query(queries[0], 5, alpha=16, gamma=8)
        small = index.last_query_stats()
        index.query(queries[0], 5, alpha=256, gamma=128)
        large = index.last_query_stats()
        assert small.extra["alpha"] == 16
        assert large.candidates >= small.candidates

    def test_query_stats_io_accounting(self, built_index):
        index, _, queries = built_index
        index.query(queries[1], 5)
        stats = index.last_query_stats()
        assert stats.page_reads > 0
        assert stats.candidates > 0
        assert stats.distance_computations >= stats.candidates
        assert stats.time_sec > 0

    def test_dimension_mismatch_rejected(self, built_index):
        index, _, _ = built_index
        with pytest.raises(ValueError):
            index.query(np.zeros(7), 5)

    def test_invalid_k_rejected(self, built_index):
        index, _, queries = built_index
        with pytest.raises(ValueError):
            index.query(queries[0], 0)

    def test_query_before_build_rejected(self):
        index = HDIndex(small_params())
        with pytest.raises(RuntimeError):
            index.query(np.zeros(16), 5)

    def test_batch_query_shape(self, built_index):
        index, _, queries = built_index
        ids, dists = index.batch_query(queries, 7)
        assert ids.shape == (len(queries), 7)
        assert dists.shape == (len(queries), 7)
        assert np.all(ids >= 0)

    def test_k_larger_than_gamma_still_returns_k(self, built_index):
        index, data, queries = built_index
        ids, _ = index.query(queries[0], 40)
        assert len(ids) == 40


class TestUpdates:
    def test_insert_is_immediately_searchable(self, tiny_clustered_module):
        data, _ = tiny_clustered_module
        index = HDIndex(small_params())
        index.build(data)
        new_point = np.full(16, 50.0)
        new_id = index.insert(new_point)
        assert new_id == len(data)
        ids, dists = index.query(new_point, 1)
        assert ids[0] == new_id
        assert index.count == len(data) + 1

    def test_delete_hides_object(self, tiny_clustered_module):
        data, _ = tiny_clustered_module
        index = HDIndex(small_params())
        index.build(data)
        target = data[5]
        ids, _ = index.query(target, 1)
        assert ids[0] == 5
        index.delete(5)
        ids, _ = index.query(target, 1)
        assert ids[0] != 5

    def test_delete_unknown_id_rejected(self, tiny_clustered_module):
        data, _ = tiny_clustered_module
        index = HDIndex(small_params())
        index.build(data)
        with pytest.raises(ValueError):
            index.delete(10**9)

    def test_insert_wrong_dim_rejected(self, tiny_clustered_module):
        data, _ = tiny_clustered_module
        index = HDIndex(small_params())
        index.build(data)
        with pytest.raises(ValueError):
            index.insert(np.zeros(3))


class TestAccounting:
    def test_memory_bytes_components(self, built_index):
        index, _, _ = built_index
        total = index.memory_bytes()
        assert total >= index.references.memory_bytes()

    def test_io_snapshot_keys(self, built_index):
        index, _, queries = built_index
        index.query(queries[0], 5)
        snap = index.io_snapshot()
        assert snap["page_reads"] > 0

    def test_deterministic_given_seed(self, tiny_clustered_module):
        data, queries = tiny_clustered_module
        first = HDIndex(small_params(seed=5))
        second = HDIndex(small_params(seed=5))
        first.build(data)
        second.build(data)
        ids_a, _ = first.query(queries[0], 10)
        ids_b, _ = second.query(queries[0], 10)
        np.testing.assert_array_equal(ids_a, ids_b)
