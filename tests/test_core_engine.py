"""Cross-implementation parity suite for the shared Algo.-2 query engine.

The engine extraction makes drift between the sequential, parallel and
sharded indexes structurally impossible; these tests pin the contract:

* identical (ids, dists) across sequential and thread-parallel `HDIndex`
  executors and the vectorised batch path on the same data/seed;
* ``query_batch`` equals a loop of ``query`` for every topology/execution
  combination;
* the thread-parallel executor reports the same ``QueryStats`` fields —
  including the random/sequential read breakdown the Sec. 5 evaluation
  metrics depend on — as sequential execution (regression: it used to
  drop them);
* the shard router forwards per-call α/β/γ/Ptolemaic overrides and
  supports global-id ``delete``.
"""

import numpy as np
import pytest

from repro.core import (
    HDIndex,
    HDIndexParams,
    QueryEngine,
    SequentialExecutor,
    ShardRouter,
    ThreadedExecutor,
)


def thread_index(p, workers=None):
    return HDIndex(p, executor=ThreadedExecutor(workers))


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(4242)
    centers = rng.uniform(0.0, 100.0, size=(6, 16))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(60, 16)) for center in centers])
    data = data[rng.permutation(len(data))]
    queries = data[rng.choice(len(data), 10, replace=False)] \
        + rng.normal(0.0, 0.5, size=(10, 16))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


def params(**overrides):
    defaults = dict(num_trees=4, num_references=5, alpha=96, gamma=32,
                    domain=(0.0, 100.0), seed=0)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


@pytest.fixture(scope="module")
def built_trio(workload):
    data, _ = workload
    sequential = HDIndex(params())
    parallel = thread_index(params(), workers=3)
    sharded = ShardRouter(params(), 3)
    for index in (sequential, parallel, sharded):
        index.build(data)
    yield sequential, parallel, sharded
    parallel.close()


class TestCrossImplementationParity:
    def test_sequential_parallel_and_batch_agree(self, workload, built_trio):
        _, queries = workload
        sequential, parallel, _ = built_trio
        batch_ids, batch_dists = sequential.query_batch(queries, 10)
        for row, query in enumerate(queries):
            ids_seq, dists_seq = sequential.query(query, 10)
            ids_par, dists_par = parallel.query(query, 10)
            np.testing.assert_array_equal(ids_seq, ids_par)
            np.testing.assert_allclose(dists_seq, dists_par)
            np.testing.assert_array_equal(
                batch_ids[row][: len(ids_seq)], ids_seq)
            np.testing.assert_allclose(
                batch_dists[row][: len(dists_seq)], dists_seq)

    @pytest.mark.parametrize("which", ["sequential", "parallel", "sharded"])
    def test_query_batch_equals_query_loop(self, workload, built_trio,
                                           which):
        _, queries = workload
        index = dict(zip(("sequential", "parallel", "sharded"),
                         built_trio))[which]
        k = 10
        batch_ids, batch_dists = index.query_batch(queries, k)
        assert batch_ids.shape == (len(queries), k)
        assert batch_dists.shape == (len(queries), k)
        for row, query in enumerate(queries):
            ids, dists = index.query(query, k)
            np.testing.assert_array_equal(batch_ids[row][: len(ids)], ids)
            np.testing.assert_allclose(batch_dists[row][: len(dists)],
                                       dists)
            assert np.all(batch_ids[row][len(ids):] == -1)
            assert np.all(np.isinf(batch_dists[row][len(dists):]))

    def test_batch_with_overrides_equals_loop_with_overrides(self, workload,
                                                             built_trio):
        _, queries = workload
        sequential, _, _ = built_trio
        overrides = dict(alpha=48, gamma=16, use_ptolemaic=True)
        batch_ids, _ = sequential.query_batch(queries, 5, **overrides)
        for row, query in enumerate(queries):
            ids, _ = sequential.query(query, 5, **overrides)
            np.testing.assert_array_equal(batch_ids[row][: len(ids)], ids)

    def test_ptolemaic_path_parity(self, workload):
        data, queries = workload
        sequential = HDIndex(params(use_ptolemaic=True))
        parallel = thread_index(params(use_ptolemaic=True))
        sequential.build(data)
        parallel.build(data)
        batch_ids, _ = parallel.query_batch(queries, 10)
        for row, query in enumerate(queries):
            ids_seq, _ = sequential.query(query, 10)
            ids_par, _ = parallel.query(query, 10)
            np.testing.assert_array_equal(ids_seq, ids_par)
            np.testing.assert_array_equal(
                batch_ids[row][: len(ids_seq)], ids_seq)
        parallel.close()

    def test_disk_backed_parallel_batch_parity(self, workload, tmp_path):
        """The batch fan-out must keep each tree's (thread-unsafe) page
        store on a single thread; disk mode would corrupt reads
        otherwise."""
        data, queries = workload
        disk = thread_index(params(storage_dir=str(tmp_path / "hd")),
                            workers=4)
        memory = HDIndex(params())
        disk.build(data)
        memory.build(data)
        ids_disk, dists_disk = disk.query_batch(queries, 10)
        ids_mem, dists_mem = memory.query_batch(queries, 10)
        np.testing.assert_array_equal(ids_disk, ids_mem)
        np.testing.assert_allclose(dists_disk, dists_mem)
        disk.close()

    def test_batch_accepts_single_vector(self, workload, built_trio):
        _, queries = workload
        sequential, _, _ = built_trio
        ids, dists = sequential.query_batch(queries[0], 5)
        assert ids.shape == (1, 5)
        ref_ids, _ = sequential.query(queries[0], 5)
        np.testing.assert_array_equal(ids[0], ref_ids)

    def test_legacy_batch_query_alias(self, workload, built_trio):
        _, queries = workload
        sequential, _, _ = built_trio
        ids_new, dists_new = sequential.query_batch(queries, 5)
        ids_old, dists_old = sequential.batch_query(queries, 5)
        np.testing.assert_array_equal(ids_new, ids_old)
        np.testing.assert_allclose(dists_new, dists_old)

    def test_default_loop_batch_aggregates_stats(self, workload):
        """Indexes without a vectorised override (the baselines) must
        still report batch-total stats after query_batch, so harness
        batch-mode comparisons stay apples-to-apples."""
        from repro.baselines import LinearScan
        data, queries = workload
        index = LinearScan()
        index.build(data)
        index.query(queries[0], 5)
        per_query = index.last_query_stats()
        index.query_batch(queries, 5)
        total = index.last_query_stats()
        assert total.extra["batch_size"] == len(queries)
        assert total.page_reads == per_query.page_reads * len(queries)
        assert total.candidates == per_query.candidates * len(queries)


class TestStatsParity:
    def test_parallel_reports_read_breakdown(self, workload, built_trio):
        """Regression: the parallel index used to drop the random/
        sequential read split from its QueryStats."""
        _, queries = workload
        sequential, parallel, _ = built_trio
        sequential.query(queries[0], 10)
        parallel.query(queries[0], 10)
        stats_seq = sequential.last_query_stats()
        stats_par = parallel.last_query_stats()
        assert stats_par.page_reads == stats_seq.page_reads
        assert stats_par.random_reads == stats_seq.random_reads
        assert stats_par.sequential_reads == stats_seq.sequential_reads
        assert stats_par.random_reads > 0
        assert (stats_par.random_reads + stats_par.sequential_reads
                == stats_par.page_reads)
        # Same schema either way; the parallel index adds the pool width.
        assert stats_par.extra["workers"] == 3
        seq_keys = set(stats_seq.as_dict()) | {"workers"}
        assert set(stats_par.as_dict()) == seq_keys

    def test_sharded_reports_read_breakdown(self, workload, built_trio):
        _, queries = workload
        _, _, sharded = built_trio
        sharded.query(queries[0], 10)
        stats = sharded.last_query_stats()
        assert stats.random_reads > 0
        assert (stats.random_reads + stats.sequential_reads
                == stats.page_reads)

    def test_batch_stats_aggregate(self, workload, built_trio):
        _, queries = workload
        sequential, _, _ = built_trio
        sequential.query_batch(queries, 10)
        stats = sequential.last_query_stats()
        assert stats.extra["batch_size"] == len(queries)
        assert stats.candidates > 0
        assert stats.page_reads > 0

    def test_batch_dedupes_descriptor_fetches(self, workload, built_trio):
        """The batch path fetches each distinct survivor once, so a batch
        of overlapping queries reads far fewer pages than the loop."""
        _, queries = workload
        sequential, _, _ = built_trio
        loop_reads = 0
        for query in queries:
            sequential.query(query, 10)
            loop_reads += sequential.last_query_stats().page_reads
        sequential.query_batch(queries, 10)
        assert sequential.last_query_stats().page_reads < loop_reads


class TestShardedOverridesAndUpdates:
    def test_overrides_forwarded_to_shards(self, workload):
        """Regression: per-call α/β/γ overrides used to be dropped, so
        sweeps over a sharded index silently ran with defaults."""
        data, queries = workload
        sharded = ShardRouter(params(), 2)
        unsharded_like = ShardRouter(params(), 2)
        sharded.build(data)
        unsharded_like.build(data)
        overrides = dict(alpha=16, gamma=8)
        swept, _ = sharded.query(queries[0], 10, **overrides)
        default, _ = sharded.query(queries[0], 10)
        assert not np.array_equal(swept, default)
        # The override must reach every shard's stats, not just shard 0.
        sharded.query(queries[0], 10, alpha=16, gamma=8)
        for shard in sharded.shards:
            assert shard.last_query_stats().extra["alpha"] == 16

    def test_ptolemaic_override_forwarded(self, workload):
        data, queries = workload
        sharded = ShardRouter(params(), 2)
        sharded.build(data)
        sharded.query(queries[0], 5, use_ptolemaic=True)
        for shard in sharded.shards:
            assert shard.last_query_stats().extra["ptolemaic"] is True

    def test_delete_routes_to_owning_shard(self, workload):
        data, _ = workload
        sharded = ShardRouter(params(), 3)
        sharded.build(data)
        for probe in (0, len(data) // 2, len(data) - 1):
            ids, _ = sharded.query(data[probe], 1)
            assert ids[0] == probe
            sharded.delete(probe)
            ids, _ = sharded.query(data[probe], 1)
            assert ids[0] != probe

    def test_delete_inserted_object(self, workload):
        data, _ = workload
        sharded = ShardRouter(params(), 3)
        sharded.build(data)
        point = np.full(16, 50.0)
        new_id = sharded.insert(point)
        ids, _ = sharded.query(point, 1)
        assert ids[0] == new_id
        sharded.delete(new_id)
        ids, _ = sharded.query(point, 1)
        assert ids[0] != new_id

    def test_delete_unknown_id_rejected(self, workload):
        data, _ = workload
        sharded = ShardRouter(params(), 2)
        sharded.build(data)
        with pytest.raises(ValueError):
            sharded.delete(len(data) + 7)
        with pytest.raises(ValueError):
            sharded.delete(-1)

    def test_delete_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            ShardRouter(params()).delete(0)

    def test_total_size_bytes_sums_shards(self, workload):
        data, _ = workload
        sharded = ShardRouter(params(), 2)
        sharded.build(data)
        assert sharded.total_size_bytes() == sum(
            shard.total_size_bytes() for shard in sharded.shards)
        assert sharded.total_size_bytes() > sharded.index_size_bytes()


class TestEngineComponents:
    def test_indexes_share_one_engine_implementation(self, built_trio):
        sequential, parallel, sharded = built_trio
        assert type(sequential._engine) is type(parallel._engine) is \
            QueryEngine
        assert isinstance(sequential._engine.executor, SequentialExecutor)
        assert isinstance(parallel._engine.executor, ThreadedExecutor)
        for shard in sharded.shards:
            assert type(shard._engine) is QueryEngine

    def test_shims_define_no_query_override(self):
        """The structural guarantee: neither deprecated shim carries a
        second copy of the Algo.-2 stage logic."""
        from repro.core import ParallelHDIndex, ShardedHDIndex
        assert "query" not in ParallelHDIndex.__dict__
        assert "query_batch" not in ParallelHDIndex.__dict__
        assert "query" not in ShardedHDIndex.__dict__
        assert "query_batch" not in ShardedHDIndex.__dict__

    def test_threaded_executor_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(num_workers=0)

    def test_threaded_executor_close_idempotent(self):
        executor = ThreadedExecutor(num_workers=2)
        assert executor.map(lambda v: v * 2, [1, 2, 3]) == [2, 4, 6]
        assert executor.workers == 2
        executor.close()
        executor.close()

    def test_deleted_ids_excluded_from_batch(self, workload):
        data, _ = workload
        index = HDIndex(params())
        index.build(data)
        probe = 17
        ids, _ = index.query_batch(data[probe][None, :], 1)
        assert ids[0, 0] == probe
        index.delete(probe)
        ids, _ = index.query_batch(data[probe][None, :], 1)
        assert ids[0, 0] != probe


class TestDeleteBatchParity:
    """Regression (PR 2): the vectorised unique-candidate batch path must
    exclude ``_deleted`` exactly as the single-query path does, for every
    family member — a leak here would resurface deleted objects only under
    batch serving load."""

    @pytest.mark.parametrize("make_index", [
        lambda: HDIndex(params()),
        lambda: thread_index(params(), workers=2),
        lambda: ShardRouter(params(), 3),
    ], ids=["sequential", "parallel", "sharded"])
    def test_batch_equals_loop_after_deletes(self, workload, make_index):
        data, queries = workload
        index = make_index()
        index.build(data)
        # Delete the current top answers of several queries, plus an
        # inserted point, so the deleted set intersects the candidate
        # pools of the whole batch.
        inserted = index.insert(np.clip(queries[0] + 0.25, 0, 100))
        deleted = {inserted}
        for query in queries[:4]:
            ids, _ = index.query(query, 3)
            deleted.update(int(v) for v in ids)
        for object_id in deleted:
            index.delete(object_id)
        batch_ids, batch_dists = index.query_batch(queries, 10)
        assert not deleted & set(batch_ids.ravel().tolist())
        for row, query in enumerate(queries):
            ids, dists = index.query(query, 10)
            np.testing.assert_array_equal(batch_ids[row][: len(ids)], ids)
            np.testing.assert_array_equal(batch_dists[row][: len(dists)],
                                          dists)
        if hasattr(index, "close"):
            index.close()

    def test_all_candidates_deleted_pads_batch_row(self, workload):
        """A query whose entire candidate pool is deleted must come back
        fully padded (-1 / +inf) from the batch path, like the loop."""
        data, _ = workload
        index = HDIndex(params())
        index.build(data)
        for object_id in range(len(data)):
            index.delete(object_id)
        ids, dists = index.query_batch(data[:3], 5)
        assert np.all(ids == -1)
        assert np.all(np.isinf(dists))
