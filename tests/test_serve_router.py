"""Tests for the replica-set tier: real server subprocesses behind a
``ReplicaRouter``.

Each replica is one ``python -m repro.serve.server`` process over the
same snapshot (the unit a deployment supervises).  The contract under
test: consistent placement, byte-identical routed answers, failover on
replica death with *zero hung futures*, deadlines that hold across
failover attempts, and graceful SIGTERM drain of the server process.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import HDIndex, HDIndexParams, open_index, save_index
from repro.serve import (
    DeadlineExceeded,
    NoReplicaAvailable,
    ReplicaRouter,
)

K = 10


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(99)
    centers = rng.uniform(0.0, 100.0, size=(4, 10))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(50, 10)) for center in centers])
    queries = data[rng.choice(len(data), 24, replace=False)] \
        + rng.normal(0.0, 0.5, size=(24, 10))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


@pytest.fixture(scope="module")
def snapshot(workload, tmp_path_factory):
    data, _ = workload
    directory = tmp_path_factory.mktemp("replica-snap")
    index = HDIndex(HDIndexParams(num_trees=3, num_references=4, alpha=64,
                                  gamma=24, domain=(0.0, 100.0), seed=0))
    index.build(data)
    save_index(index, directory)
    index.close()
    return directory


@pytest.fixture(scope="module")
def expected(snapshot, workload):
    _, queries = workload
    index = open_index(snapshot)
    answers = [index.query(q, K) for q in queries]
    index.close()
    return answers


def start_replica(snapshot, timeout=30.0):
    """Launch one server process; returns ``(process, port)`` once the
    READY handshake line arrives."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.server",
         "--snapshot", str(snapshot), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    line = process.stdout.readline().strip()
    if not line.startswith("REPRO-SERVE READY"):
        process.kill()
        stderr = process.stderr.read()
        raise RuntimeError(f"bad handshake {line!r}; stderr: {stderr}")
    port = int(line.split("port=")[1].split()[0])
    return process, port


def stop_replica(process):
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)
    process.stdout.close()
    process.stderr.close()


@pytest.fixture(scope="module")
def replica_pair(snapshot):
    replicas = [start_replica(snapshot) for _ in range(2)]
    yield replicas
    for process, _ in replicas:
        stop_replica(process)


class TestRouting:
    def test_routed_answers_byte_identical(self, replica_pair, workload,
                                           expected):
        _, queries = workload
        endpoints = [("127.0.0.1", port) for _, port in replica_pair]

        async def main():
            async with ReplicaRouter(endpoints) as router:
                return await router.query_many(queries, K,
                                               deadline_ms=30000.0)

        results = asyncio.run(main())
        assert not any(isinstance(r, BaseException) for r in results)
        for (ids, dists), (want_ids, want_dists) in zip(results, expected):
            assert ids.tobytes() == want_ids.tobytes()
            assert dists.tobytes() == want_dists.tobytes()

    def test_placement_is_stable_and_uses_both_replicas(
            self, workload):
        _, queries = workload
        endpoints = [("127.0.0.1", 1), ("127.0.0.1", 2)]
        router_a = ReplicaRouter(endpoints)
        router_b = ReplicaRouter(endpoints)
        homes = [router_a.placement(q)[0] for q in queries]
        assert homes == [router_b.placement(q)[0] for q in queries]
        assert set(homes) == {0, 1}  # both replicas carry load

    def test_tiny_deadline_is_typed_not_a_hang(self, replica_pair,
                                               workload):
        _, queries = workload
        endpoints = [("127.0.0.1", port) for _, port in replica_pair]

        async def main():
            async with ReplicaRouter(endpoints) as router:
                with pytest.raises(DeadlineExceeded):
                    await router.query(queries[0], K, deadline_ms=0.01)

        started = time.monotonic()
        asyncio.run(main())
        assert time.monotonic() - started < 10.0

    def test_router_stats_reach_replicas(self, replica_pair, workload):
        _, queries = workload
        endpoints = [("127.0.0.1", port) for _, port in replica_pair]

        async def main():
            async with ReplicaRouter(endpoints) as router:
                await router.query(queries[0], K)
                return await router.stats()

        stats = asyncio.run(main())
        assert stats["router"]["queries"] == 1
        assert len(stats["replicas"]) == 2
        assert all(r is not None and "service" in r
                   for r in stats["replicas"])


class TestFailover:
    def test_sigkill_mid_stream_fails_over_with_zero_hangs(
            self, snapshot, workload, expected):
        """Kill one replica; every query still answers byte-identically
        through the survivor, within a bounded deadline (no hung
        futures), and the router records the failovers."""
        _, queries = workload
        replicas = [start_replica(snapshot) for _ in range(2)]
        try:
            endpoints = [("127.0.0.1", port) for _, port in replicas]

            async def main():
                async with ReplicaRouter(endpoints,
                                         cooldown=0.2) as router:
                    # Warm both connections, then kill replica 0.
                    first = await router.query(queries[0], K,
                                               deadline_ms=30000.0)
                    replicas[0][0].kill()
                    replicas[0][0].wait(timeout=10)
                    results = await router.query_many(
                        queries, K, deadline_ms=30000.0)
                    return first, results, router.counters

            first, results, counters = asyncio.run(main())
            failures = [r for r in results
                        if isinstance(r, BaseException)]
            assert not failures, f"hung/failed queries: {failures[:3]}"
            for (ids, dists), (want_ids, want_dists) in zip(results,
                                                            expected):
                assert ids.tobytes() == want_ids.tobytes()
                assert dists.tobytes() == want_dists.tobytes()
            # Some of the workload was homed on the dead replica.
            assert counters["failovers"] >= 1
        finally:
            for process, _ in replicas:
                stop_replica(process)

    def test_all_replicas_down_raises_no_replica_available(self):
        async def main():
            # Nothing listens on these ports (port 1 is reserved and
            # unbindable for non-root, connect fails fast).
            router = ReplicaRouter([("127.0.0.1", 1)], cooldown=0.1)
            try:
                with pytest.raises(NoReplicaAvailable):
                    await router.query(np.zeros(10), K)
            finally:
                await router.close()

        asyncio.run(main())

    def test_dead_replica_reprobed_after_cooldown(self, snapshot,
                                                  workload):
        """A replica that dies and comes back is used again once its
        cooldown lapses — order placement, not permanent exile."""
        _, queries = workload
        process, port = start_replica(snapshot)
        try:
            endpoints = [("127.0.0.1", port)]

            async def main():
                async with ReplicaRouter(endpoints,
                                         cooldown=0.05) as router:
                    await router.query(queries[0], K)
                    return router.counters

            counters = asyncio.run(main())
            assert counters["queries"] == 1
        finally:
            stop_replica(process)


class TestServerProcess:
    def test_sigterm_drains_gracefully(self, snapshot, workload):
        _, queries = workload
        process, port = start_replica(snapshot)
        try:
            from repro.serve import ServeClient
            with ServeClient("127.0.0.1", port) as client:
                ids, _ = client.query(queries[0], k=K)
                assert len(ids) == K
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=20) == 0
        finally:
            stop_replica(process)
