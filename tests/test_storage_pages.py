"""Unit tests for the fixed-size page stores."""

import pytest

from repro.storage import (
    DEFAULT_PAGE_SIZE,
    FilePageStore,
    InMemoryPageStore,
    StorageError,
)


class TestInMemoryPageStore:
    def test_allocate_returns_sequential_ids(self):
        store = InMemoryPageStore()
        assert [store.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_new_pages_are_zeroed(self):
        store = InMemoryPageStore(page_size=64)
        page_id = store.allocate()
        assert store.read(page_id) == bytes(64)

    def test_round_trip(self):
        store = InMemoryPageStore(page_size=64)
        page_id = store.allocate()
        store.write(page_id, b"hello")
        assert store.read(page_id) == b"hello" + bytes(59)

    def test_write_full_page(self):
        store = InMemoryPageStore(page_size=32)
        page_id = store.allocate()
        payload = bytes(range(32))
        store.write(page_id, payload)
        assert store.read(page_id) == payload

    def test_oversized_write_rejected(self):
        store = InMemoryPageStore(page_size=16)
        page_id = store.allocate()
        with pytest.raises(StorageError):
            store.write(page_id, bytes(17))

    def test_out_of_range_read_rejected(self):
        store = InMemoryPageStore()
        with pytest.raises(StorageError):
            store.read(0)
        store.allocate()
        with pytest.raises(StorageError):
            store.read(1)
        with pytest.raises(StorageError):
            store.read(-1)

    def test_closed_store_rejects_everything(self):
        store = InMemoryPageStore()
        page_id = store.allocate()
        store.close()
        with pytest.raises(StorageError):
            store.read(page_id)
        with pytest.raises(StorageError):
            store.allocate()

    def test_size_bytes_counts_pages(self):
        store = InMemoryPageStore(page_size=128)
        for _ in range(3):
            store.allocate()
        assert store.size_bytes() == 3 * 128
        assert store.num_pages == 3

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            InMemoryPageStore(page_size=0)

    def test_context_manager_closes(self):
        with InMemoryPageStore() as store:
            store.allocate()
        with pytest.raises(StorageError):
            store.allocate()

    def test_iter_page_ids(self):
        store = InMemoryPageStore()
        for _ in range(4):
            store.allocate()
        assert list(store.iter_page_ids()) == [0, 1, 2, 3]


class TestIOAccounting:
    def test_reads_and_writes_counted(self):
        store = InMemoryPageStore(page_size=32)
        page_id = store.allocate()        # allocation is not counted I/O
        store.write(page_id, b"x")
        store.write(page_id, b"y")
        store.read(page_id)
        store.read(page_id)
        assert store.stats.page_writes == 2
        assert store.stats.page_reads == 2

    def test_sequential_vs_random_classification(self):
        store = InMemoryPageStore(page_size=32)
        for _ in range(5):
            store.allocate()
        for page_id in range(5):          # strictly sequential scan
            store.read(page_id)
        assert store.stats.sequential_reads == 4
        assert store.stats.random_reads == 1  # the very first read
        store.read(0)                      # jump back: random
        assert store.stats.random_reads == 2

    def test_stats_reset(self):
        store = InMemoryPageStore(page_size=32)
        page = store.allocate()
        store.read(page)
        store.stats.reset()
        assert store.stats.page_reads == 0
        assert store.stats.page_writes == 0

    def test_stats_addition(self):
        a = InMemoryPageStore(page_size=32)
        b = InMemoryPageStore(page_size=32)
        pa, pb = a.allocate(), b.allocate()
        a.write(pa, b"x")
        b.write(pb, b"y")
        a.read(pa)
        b.read(pb)
        b.read(pb)
        combined = a.stats + b.stats
        assert combined.page_reads == 3
        assert combined.page_writes == 2

    def test_snapshot_is_plain_dict(self):
        store = InMemoryPageStore(page_size=32)
        page = store.allocate()
        store.write(page, b"z")
        snap = store.stats.snapshot()
        assert snap["page_writes"] == 1
        assert set(snap) == {
            "page_reads", "page_writes", "random_reads", "sequential_reads",
            "random_writes", "sequential_writes", "cache_hits"}


class TestFilePageStore:
    def test_round_trip_on_disk(self, tmp_path):
        path = tmp_path / "pages.bin"
        store = FilePageStore(path, page_size=64)
        page_id = store.allocate()
        store.write(page_id, b"persisted")
        assert store.read(page_id).startswith(b"persisted")
        store.close()

    def test_reopen_existing_file(self, tmp_path):
        path = tmp_path / "pages.bin"
        store = FilePageStore(path, page_size=64)
        page_id = store.allocate()
        store.write(page_id, b"alpha")
        store.close()
        reopened = FilePageStore(path, page_size=64)
        assert reopened.num_pages == 1
        assert reopened.read(0).startswith(b"alpha")
        reopened.close()

    def test_reopen_with_wrong_page_size_rejected(self, tmp_path):
        path = tmp_path / "pages.bin"
        store = FilePageStore(path, page_size=64)
        store.allocate()
        store.close()
        with pytest.raises(StorageError):
            FilePageStore(path, page_size=48)

    def test_reopen_after_close_continues_allocation(self, tmp_path):
        """Close -> reopen -> keep appending: the insert-on-loaded-snapshot
        path the persistence layer depends on."""
        path = tmp_path / "pages.bin"
        store = FilePageStore(path, page_size=64)
        for index in range(3):
            page_id = store.allocate()
            store.write(page_id, bytes([index + 1]) * 8)
        store.close()
        with pytest.raises(StorageError):
            store.read(0)  # closed store stays closed
        reopened = FilePageStore(path, page_size=64)
        assert reopened.num_pages == 3
        assert list(reopened.iter_page_ids()) == [0, 1, 2]
        for index in range(3):
            assert reopened.read(index).startswith(bytes([index + 1]) * 8)
        assert reopened.allocate() == 3  # ids continue past the reopen
        reopened.write(3, b"appended")
        reopened.close()
        final = FilePageStore(path, page_size=64)
        assert final.num_pages == 4
        assert final.read(3).startswith(b"appended")
        final.close()

    def test_flush_then_reopen_sees_writes(self, tmp_path):
        path = tmp_path / "pages.bin"
        store = FilePageStore(path, page_size=64)
        store.write(store.allocate(), b"durable")
        store.flush()
        parallel_view = FilePageStore(path, page_size=64)
        assert parallel_view.read(0).startswith(b"durable")
        parallel_view.close()
        store.close()

    def test_close_is_idempotent(self, tmp_path):
        store = FilePageStore(tmp_path / "pages.bin", page_size=64)
        store.allocate()
        store.close()
        store.close()  # second close must not raise

    def test_default_page_size_is_paper_value(self):
        assert DEFAULT_PAGE_SIZE == 4096
