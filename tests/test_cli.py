"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, cmd_build, cmd_compare, cmd_info, cmd_query, main


def run(argv, out=None):
    args = build_parser().parse_args(argv)
    from repro.cli import COMMANDS
    return COMMANDS[args.command](args, out=out or io.StringIO())


class TestInfo:
    def test_lists_all_datasets(self):
        out = io.StringIO()
        assert run(["info"], out) == 0
        text = out.getvalue()
        for name in ("sift10k", "audio", "sun", "glove", "enron", "yorck"):
            assert name in text

    def test_mentions_paper_defaults(self):
        out = io.StringIO()
        run(["info"], out)
        assert "m=10" in out.getvalue()


class TestBuildQuery:
    def test_build_then_query_round_trip(self, tmp_path):
        out = io.StringIO()
        code = run(["build", "--dataset", "glove", "--n", "300",
                    "--out", str(tmp_path / "idx"), "--trees", "4",
                    "--alpha", "64", "--gamma", "16"], out)
        assert code == 0
        assert "built HD-Index" in out.getvalue()
        assert (tmp_path / "idx" / "meta.json").exists()

        out = io.StringIO()
        code = run(["query", "--index", str(tmp_path / "idx"),
                    "--dataset", "glove", "--n", "300",
                    "--queries", "5", "-k", "5"], out)
        assert code == 0
        assert "MAP@k" in out.getvalue()

    def test_query_dimension_mismatch_fails_cleanly(self, tmp_path):
        run(["build", "--dataset", "glove", "--n", "200",
             "--out", str(tmp_path / "idx"), "--trees", "4",
             "--alpha", "32", "--gamma", "8"])
        code = run(["query", "--index", str(tmp_path / "idx"),
                    "--dataset", "sift10k", "--n", "200", "-k", "3"])
        assert code == 2

    def test_build_from_fvecs(self, tmp_path):
        import numpy as np

        from repro.datasets import write_vecs
        vectors = np.random.default_rng(0).uniform(
            0, 10, size=(220, 16)).astype(np.float32)
        path = tmp_path / "data.fvecs"
        write_vecs(path, vectors)
        out = io.StringIO()
        code = run(["build", "--fvecs", str(path), "--n", "200",
                    "--queries", "20", "--out", str(tmp_path / "idx"),
                    "--trees", "4", "--alpha", "32", "--gamma", "8"], out)
        assert code == 0
        assert "n=200" in out.getvalue()


class TestWalCompact:
    def test_build_wal_update_then_compact(self, tmp_path):
        out = io.StringIO()
        code = run(["build", "--dataset", "glove", "--n", "200",
                    "--out", str(tmp_path / "idx"), "--trees", "4",
                    "--alpha", "32", "--gamma", "8", "--wal"], out)
        assert code == 0

        # Simulate a client session: the reopened index records updates
        # in the WAL next to the snapshot instead of resyncing it.
        import numpy as np

        from repro.core import open_index
        index = open_index(str(tmp_path / "idx"))
        try:
            assert index._wal_active()
            rng = np.random.default_rng(7)
            index.insert(rng.uniform(0.0, 10.0, size=index.dim))
            index.delete(0)
        finally:
            index.close()
        assert (tmp_path / "idx" / "wal.log").exists()

        out = io.StringIO()
        code = run(["compact", "--index", str(tmp_path / "idx")], out)
        assert code == 0
        assert "generation 1" in out.getvalue()
        assert (tmp_path / "idx" / "CURRENT").exists()

        # The folded generation serves queries like any snapshot.
        out = io.StringIO()
        code = run(["query", "--index", str(tmp_path / "idx"),
                    "--dataset", "glove", "--n", "200",
                    "--queries", "3", "-k", "3"], out)
        assert code == 0
        assert "MAP@k" in out.getvalue()

    def test_compact_rejects_non_wal_index(self, tmp_path, capsys):
        run(["build", "--dataset", "glove", "--n", "150",
             "--out", str(tmp_path / "idx"), "--trees", "4",
             "--alpha", "32", "--gamma", "8"])
        assert run(["compact", "--index", str(tmp_path / "idx")]) == 2
        assert "not WAL-backed" in capsys.readouterr().err


class TestCompare:
    def test_compare_selected_methods(self):
        out = io.StringIO()
        code = run(["compare", "--dataset", "glove", "--n", "250",
                    "--queries", "4", "-k", "5",
                    "--methods", "hdindex,linear,vafile"], out)
        assert code == 0
        text = out.getvalue()
        for name in ("hdindex", "linear", "vafile"):
            assert name in text

    def test_unknown_method_rejected(self):
        code = run(["compare", "--dataset", "glove", "--n", "100",
                    "--methods", "faiss"])
        assert code == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_main_dispatches(self, capsys):
        assert main(["info"]) == 0
