"""Cross-module property-based tests (hypothesis).

These tie the invariants of the whole pipeline together: whatever the
configuration, the structural guarantees of Sec. 3-4 must hold —
candidate-set bounds, filter validity end-to-end, determinism, and
consistency between the exact oracle and the exact methods.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import VAFile
from repro.core import HDIndex, HDIndexParams
from repro.eval import average_precision, exact_knn


def make_data(seed, n, dim, clusters=4, span=50.0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, span, size=(clusters, dim))
    assignment = rng.integers(0, clusters, size=n)
    data = centers[assignment] + rng.normal(0.0, span * 0.03,
                                            size=(n, dim))
    return np.clip(data, 0.0, span)


class TestHDIndexInvariants:
    @given(st.integers(0, 10**6),
           st.integers(2, 4),          # τ
           st.integers(2, 6),          # m
           st.integers(8, 48),         # α
           st.integers(1, 5))          # k
    @settings(max_examples=15, deadline=None)
    def test_kappa_bounded_by_tau_gamma(self, seed, tau, m, alpha, k):
        """Sec. 4.2: γ <= κ <= τ·γ for the merged candidate set."""
        data = make_data(seed, n=120, dim=8)
        gamma = max(k, alpha // 4)
        index = HDIndex(HDIndexParams(
            num_trees=tau, num_references=m, alpha=alpha, gamma=gamma,
            domain=(0.0, 50.0), seed=seed % 100))
        index.build(data)
        query = data[seed % len(data)] + 0.1
        index.query(query, k)
        kappa = index.last_query_stats().candidates
        effective_gamma = min(gamma, len(data))
        assert kappa <= tau * effective_gamma
        assert kappa >= min(effective_gamma, len(data)) // 2 or kappa > 0

    @given(st.integers(0, 10**6), st.integers(1, 8))
    @settings(max_examples=15, deadline=None)
    def test_results_sorted_unique_valid(self, seed, k):
        data = make_data(seed, n=100, dim=8)
        index = HDIndex(HDIndexParams(
            num_trees=4, num_references=4, alpha=32, gamma=16,
            domain=(0.0, 50.0), seed=0))
        index.build(data)
        rng = np.random.default_rng(seed + 1)
        query = rng.uniform(0.0, 50.0, size=8)
        ids, dists = index.query(query, k)
        assert len(ids) == min(k, len(data))
        assert len(set(ids.tolist())) == len(ids)
        assert np.all(np.diff(dists) >= 0)
        assert np.all((ids >= 0) & (ids < len(data)))

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_reported_distances_are_true_distances(self, seed):
        """Stage (iii) computes exact distances: every reported distance
        must equal the true L2 distance to that id (up to storage dtype)."""
        data = make_data(seed, n=80, dim=8)
        index = HDIndex(HDIndexParams(
            num_trees=4, num_references=4, alpha=32, gamma=16,
            domain=(0.0, 50.0), seed=0))
        index.build(data)
        query = data[0] + 0.05
        ids, dists = index.query(query, 5)
        for object_id, reported in zip(ids, dists):
            true = float(np.sqrt(np.sum((data[object_id] - query) ** 2)))
            assert reported == pytest.approx(true, abs=1e-3)

    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_alpha_covering_database_is_exact(self, seed):
        """With α = γ = n the filters cannot drop anything: HD-Index
        degenerates to exact search — the correctness anchor."""
        data = make_data(seed, n=60, dim=6)
        # float64 storage so near-ties agree bit-for-bit with the oracle.
        index = HDIndex(HDIndexParams(
            num_trees=3, num_references=4, alpha=60, gamma=60,
            domain=(0.0, 50.0), storage_dtype="float64", seed=0))
        index.build(data)
        rng = np.random.default_rng(seed + 2)
        query = rng.uniform(0.0, 50.0, size=6)
        ids, _ = index.query(query, 5)
        true_ids, _ = exact_knn(data, query, 5)
        assert set(ids.tolist()) == set(true_ids[0].tolist())


class TestExactMethodAgreement:
    @given(st.integers(0, 10**6), st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_vafile_equals_oracle(self, seed, bits):
        data = make_data(seed, n=90, dim=6)
        # float64 storage so near-ties agree bit-for-bit with the oracle.
        index = VAFile(bits=bits, storage_dtype="float64")
        index.build(data)
        rng = np.random.default_rng(seed + 3)
        query = rng.uniform(0.0, 50.0, size=6)
        ids, _ = index.query(query, 7)
        true_ids, _ = exact_knn(data, query, 7)
        assert set(ids.tolist()) == set(true_ids[0].tolist())


class TestMetricInvariants:
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=10,
                    unique=True),
           st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_ap_monotone_under_prefix_corruption(self, true_ids, seed):
        """Replacing a prefix of a perfect ranking with junk can only
        lower AP."""
        rng = np.random.default_rng(seed)
        k = len(true_ids)
        junk = 1000 + rng.integers(0, 100, size=k)
        perfect = average_precision(true_ids, true_ids, k)
        for corrupt in range(1, k + 1):
            result = list(junk[:corrupt]) + list(true_ids[corrupt:])
            assert average_precision(true_ids, result, k) <= perfect + 1e-12

    @given(st.integers(0, 10**6), st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_map_of_exact_results_is_one(self, seed, k):
        data = make_data(seed, n=60, dim=5)
        queries = data[:3] + 0.01
        true_ids, _ = exact_knn(data, queries, k=min(k, 20))
        for row in range(3):
            assert average_precision(true_ids[row], true_ids[row]) == 1.0
