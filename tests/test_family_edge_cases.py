"""Edge-case contracts across the whole HD-Index family.

Every family member — plain, thread-parallel, process-parallel, sharded —
must agree on the boundary behaviours a serving tier leans on: ``k``
validation, querying before ``build()``, ``k > n``, a single-point index,
and querying after every point has been deleted (the empty
surviving-candidate set, which must not touch the descriptor heap at all).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Execution,
    HDIndex,
    HDIndexParams,
    IndexSpec,
    ShardRouter,
    Topology,
    create_index,
)

DIM = 8
K = 3


def _params(**overrides):
    defaults = dict(num_trees=2, hilbert_order=5, num_references=3,
                    alpha=16, gamma=8, domain=(-3.0, 3.0), seed=2)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


def _data(n: int) -> np.ndarray:
    rng = np.random.default_rng(31)
    return np.clip(rng.normal(0.0, 1.0, size=(n, DIM)), -3.0, 3.0)


def _make_hdindex(tmp_path):
    return HDIndex(_params())


def _make_parallel(tmp_path):
    return create_index(IndexSpec(
        params=_params(), execution=Execution(kind="thread", workers=2)))


def _make_process(tmp_path):
    return create_index(IndexSpec(
        params=_params(storage_dir=str(tmp_path)),
        execution=Execution(kind="process", workers=2)))


def _make_sharded(tmp_path):
    return create_index(IndexSpec(params=_params(),
                                  topology=Topology(shards=2)))


FAMILY = [
    pytest.param(_make_hdindex, id="hdindex"),
    pytest.param(_make_parallel, id="parallel"),
    pytest.param(_make_process, id="process"),
    pytest.param(_make_sharded, id="sharded"),
]
#: Members that can hold exactly one point (a 2-shard index cannot).
SINGLETON_FAMILY = FAMILY[:3]


def _heap_reads(index) -> int:
    """Descriptor-heap page reads, summed over shards where applicable."""
    if isinstance(index, ShardRouter):
        return sum(shard.heap.stats.page_reads for shard in index.shards)
    return index.heap.stats.page_reads


@pytest.mark.parametrize("make_index", FAMILY)
class TestValidation:
    def test_k_zero_and_negative_rejected(self, make_index, tmp_path):
        index = make_index(tmp_path)
        index.build(_data(20))
        try:
            point = np.zeros(DIM)
            for bad_k in (0, -1):
                with pytest.raises(ValueError, match="k"):
                    index.query(point, bad_k)
                with pytest.raises(ValueError, match="k"):
                    index.query_batch(point[None, :], bad_k)
        finally:
            index.close()

    def test_query_before_build_rejected(self, make_index, tmp_path):
        index = make_index(tmp_path)
        with pytest.raises(RuntimeError, match="build"):
            index.query(np.zeros(DIM), K)
        with pytest.raises(RuntimeError, match="build"):
            index.query_batch(np.zeros((1, DIM)), K)


@pytest.mark.parametrize("make_index", FAMILY)
class TestKLargerThanN:
    def test_single_query_returns_all_points(self, make_index, tmp_path):
        n = 6
        index = make_index(tmp_path)
        # α covering the dataset makes every member exact, so k > n must
        # surface every point exactly once, sorted by distance.
        index.build(_data(n))
        try:
            ids, dists = index.query(np.zeros(DIM), k=n + 10)
            assert ids.shape == dists.shape
            assert ids.shape[0] == n
            assert sorted(ids.tolist()) == list(range(n))
            assert np.all(np.diff(dists) >= 0)
        finally:
            index.close()

    def test_batch_pads_missing_rows(self, make_index, tmp_path):
        n = 6
        k = n + 4
        index = make_index(tmp_path)
        index.build(_data(n))
        try:
            ids, dists = index.query_batch(np.zeros((2, DIM)), k=k)
            assert ids.shape == (2, k) and dists.shape == (2, k)
            for row in range(2):
                assert np.all(ids[row, :n] >= 0)
                assert np.all(ids[row, n:] == -1)
                assert np.all(np.isinf(dists[row, n:]))
        finally:
            index.close()


def _make_singleton(factory, tmp_path):
    """A single point can host at most one reference object (m <= n)."""
    index = factory(tmp_path)
    index.params = _params(num_references=1,
                           storage_dir=index.params.storage_dir)
    return index


@pytest.mark.parametrize("make_index", SINGLETON_FAMILY)
class TestSinglePointIndex:
    def test_only_point_always_answers(self, make_index, tmp_path):
        data = _data(1)
        index = _make_singleton(make_index, tmp_path)
        index.build(data)
        try:
            ids, dists = index.query(data[0], K)
            assert ids.tolist() == [0]
            assert dists[0] < 1e-6
            ids, dists = index.query_batch(np.zeros((3, DIM)), K)
            assert np.all(ids[:, 0] == 0)
            assert np.all(ids[:, 1:] == -1)
        finally:
            index.close()


def test_sharded_rejects_fewer_points_than_shards():
    index = ShardRouter(_params(), Topology(shards=2))
    with pytest.raises(ValueError, match="shards"):
        index.build(_data(1))


@pytest.mark.parametrize("make_index", FAMILY)
class TestDeleteAll:
    def test_query_after_deleting_everything(self, make_index, tmp_path):
        """The empty surviving-candidate set end to end: empty results,
        padded batch rows, and — the regression this guards — zero
        descriptor-heap reads (the store must not be touched when no
        candidate survives)."""
        n = 12
        index = make_index(tmp_path)
        index.build(_data(n))
        try:
            for object_id in range(n):
                index.delete(object_id)
            reads_before = _heap_reads(index)
            ids, dists = index.query(np.zeros(DIM), K)
            assert ids.shape == (0,) and dists.shape == (0,)
            batch_ids, batch_dists = index.query_batch(
                np.zeros((2, DIM)), K)
            assert np.all(batch_ids == -1)
            assert np.all(np.isinf(batch_dists))
            assert _heap_reads(index) == reads_before, \
                "empty candidate set must not touch the descriptor heap"
        finally:
            index.close()

    def test_insert_after_delete_all_revives(self, make_index, tmp_path):
        n = 8
        index = make_index(tmp_path)
        data = _data(n)
        index.build(data)
        try:
            for object_id in range(n):
                index.delete(object_id)
            new_id = index.insert(np.full(DIM, 0.5))
            ids, dists = index.query(np.full(DIM, 0.5), K)
            assert ids.tolist() == [new_id]
            assert dists[0] < 1e-5
        finally:
            index.close()
