"""Unit and property tests for the distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.distance import (
    DistanceCounter,
    euclidean,
    euclidean_to_many,
    pairwise_euclidean,
    top_k_smallest,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert euclidean([1.5, -2.5], [1.5, -2.5]) == 0.0

    def test_counter_increments(self):
        counter = DistanceCounter()
        euclidean([0, 0], [1, 1], counter)
        euclidean([0, 0], [1, 1], counter)
        assert counter.count == 2
        counter.reset()
        assert counter.count == 0

    def test_to_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        query = rng.normal(size=8)
        points = rng.normal(size=(20, 8))
        batch = euclidean_to_many(query, points)
        for index in range(20):
            assert batch[index] == pytest.approx(
                euclidean(query, points[index]))

    def test_to_many_counts_rows(self):
        counter = DistanceCounter()
        euclidean_to_many(np.zeros(4), np.zeros((7, 4)), counter)
        assert counter.count == 7

    def test_to_many_accepts_single_vector(self):
        got = euclidean_to_many(np.zeros(3), np.asarray([3.0, 0.0, 4.0]))
        assert got.shape == (1,)
        assert got[0] == pytest.approx(5.0)


class TestPairwise:
    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(6, 5))
        b = rng.normal(size=(9, 5))
        fast = pairwise_euclidean(a, b)
        naive = np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2))
        np.testing.assert_allclose(fast, naive, atol=1e-9)

    def test_self_distance_zero_diagonal(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(10, 4))
        matrix = pairwise_euclidean(points, points)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-7)

    def test_no_negative_under_roundoff(self):
        # Large magnitudes stress the |x|² + |y|² − 2x·y cancellation.
        points = np.full((3, 4), 1e8)
        matrix = pairwise_euclidean(points, points)
        assert np.all(matrix >= 0.0)

    @given(hnp.arrays(np.float64, (4, 3), elements=finite_floats),
           hnp.arrays(np.float64, (5, 3), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_symmetry_property(self, a, b):
        np.testing.assert_allclose(pairwise_euclidean(a, b),
                                   pairwise_euclidean(b, a).T,
                                   atol=1e-6, rtol=1e-9)

    @given(hnp.arrays(np.float64, (5, 3), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality_property(self, points):
        matrix = pairwise_euclidean(points, points)
        # The |x|²+|y|²−2x·y expansion loses absolute precision at large
        # magnitudes; tolerance must scale with the values involved.
        tolerance = 1e-6 * (1.0 + float(matrix.max()))
        for i in range(5):
            for j in range(5):
                for k in range(5):
                    assert matrix[i, j] <= (matrix[i, k] + matrix[k, j]
                                            + tolerance)


class TestTopK:
    def test_orders_ascending(self):
        values = np.asarray([5.0, 1.0, 3.0, 2.0, 4.0])
        assert top_k_smallest(values, 3).tolist() == [1, 3, 2]

    def test_k_larger_than_n(self):
        values = np.asarray([3.0, 1.0])
        assert top_k_smallest(values, 10).tolist() == [1, 0]

    def test_k_zero(self):
        assert top_k_smallest(np.asarray([1.0]), 0).size == 0

    def test_stability_on_ties(self):
        values = np.asarray([2.0, 1.0, 1.0, 1.0])
        got = top_k_smallest(values, 2).tolist()
        assert got == [1, 2]

    @given(hnp.arrays(np.float64, st.integers(1, 50),
                      elements=finite_floats),
           st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_matches_full_sort_property(self, values, k):
        got = top_k_smallest(values, k)
        expected = np.sort(values)[: min(k, len(values))]
        np.testing.assert_array_equal(values[got], expected)
