"""WAL recovery battery (repro.wal).

Every durability claim the write-ahead log makes is exercised here the
hard way:

* kill-after-append — a child process appends through the WAL and
  SIGKILLs itself; the parent recovers and must see exactly the records
  that were fsynced, byte-identical to an index built from the same
  stream in one shot;
* torn final record — the log is truncated mid-frame (a torn write);
  replay drops only the torn tail and repairs the file;
* bit-flipped CRC — a corrupted payload is detected and everything from
  the bad frame on is dropped;
* replay idempotence — replaying twice equals replaying once, including
  the crash-between-publish-and-truncate window where an already-folded
  log is replayed over the new generation;
* and, throughout, the write path never restarts worker pools or
  rewrites the snapshot (the regression that motivated the WAL).

All parity checks run the exhaustive regime (α ≥ n, γ = α, triangular
filter only) so answers are byte-identical, not merely close.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

import repro.core.procpool as procpool
from repro.core import (
    Execution,
    HDIndex,
    HDIndexParams,
    IndexSpec,
    PersistenceError,
    SnapshotWorkerPool,
    build,
    open_index,
    save_index,
)
from repro.wal import (
    WAL_FILE,
    WriteAheadLog,
    read_current,
    replay_wal,
    resolve_snapshot_dir,
)
from repro.wal.log import _HEADER

DIM = 6
BASE_N = 120
SEED = 41

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="kill tests rely on fork-started children")


def _params(directory=None):
    """Exhaustive regime: α ≥ any count this file reaches, γ = α, no
    Ptolemaic pruning — answers are byte-identical to brute force."""
    return HDIndexParams(num_trees=2, hilbert_order=6, num_references=4,
                         alpha=512, gamma=512, use_ptolemaic=False,
                         domain=(0.0, 100.0), seed=3,
                         storage_dir=directory)


def _base_data():
    rng = np.random.default_rng(SEED)
    return rng.uniform(0.0, 100.0, size=(BASE_N, DIM))


def _extra(seed, count):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 100.0, size=(count, DIM))


def _build_wal_index(directory, data=None):
    spec = IndexSpec(params=_params(), execution=Execution(wal=True))
    return build(spec, _base_data() if data is None else data,
                 storage_dir=str(directory))


def _oracle(vectors, deleted=()):
    """A fresh one-shot index over the full stream — the parity yardstick."""
    index = HDIndex(_params())
    index.build(np.asarray(vectors, dtype=np.float64))
    for object_id in deleted:
        index.delete(object_id)
    return index


def _assert_parity(index, oracle, queries, k=5):
    for query in queries:
        ids, dists = index.query(query, k)
        oracle_ids, oracle_dists = oracle.query(query, k)
        np.testing.assert_array_equal(ids, oracle_ids)
        np.testing.assert_array_equal(dists, oracle_dists)


def _simulate_crash(index):
    """Drop the index without compacting or flushing anything beyond what
    the fsync policy already guaranteed — the closest a test can get to
    pulling the plug without a child process."""
    if index._wal is not None:
        index._wal.close()
    # Deliberately NOT index.close(): a crash never runs that.


class TestFrameFormat:
    def test_roundtrip_insert_delete(self, tmp_path):
        path = tmp_path / WAL_FILE
        log = WriteAheadLog(path)
        vector = np.arange(DIM, dtype=np.float64) + 0.5
        log.append_insert(7, vector)
        log.append_delete(3)
        log.append_insert(8, vector * 2, shard=2)
        log.close()
        records, dropped = replay_wal(path)
        assert dropped == 0
        assert [r.op for r in records] == ["insert", "delete", "insert"]
        assert [r.object_id for r in records] == [7, 3, 8]
        assert [r.shard for r in records] == [-1, -1, 2]
        np.testing.assert_array_equal(records[0].vector, vector)
        np.testing.assert_array_equal(records[2].vector, vector * 2)
        assert records[1].vector is None

    def test_missing_log_replays_empty(self, tmp_path):
        records, dropped = replay_wal(tmp_path / "absent.log")
        assert records == [] and dropped == 0


class TestKillAfterAppend:
    @needs_fork
    @pytest.mark.parametrize("kill_after", [0, 1, 5, 12])
    def test_recovered_equals_one_shot_build(self, tmp_path, kill_after):
        directory = tmp_path / "snap"
        _build_wal_index(directory).close()

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_child_insert_and_die,
                            args=(str(directory), 99, kill_after))
        child.start()
        child.join(60)
        assert child.exitcode == -signal.SIGKILL

        recovered = open_index(directory)
        try:
            extra = _extra(99, kill_after)
            stream = np.vstack([_base_data(), extra]) if kill_after \
                else _base_data()
            deleted = {2} if kill_after >= 3 else set()
            assert recovered.count == BASE_N + kill_after
            oracle = _oracle(stream, deleted)
            _assert_parity(recovered, oracle, _base_data()[:4])
            oracle.close()
        finally:
            recovered.close()


def _child_insert_and_die(directory, seed, kill_after):
    index = open_index(directory, wal=True)
    for position, vector in enumerate(_extra(seed, kill_after)):
        index.insert(vector)
        if position == 2:
            index.delete(2)
    os.kill(os.getpid(), signal.SIGKILL)


class TestTornAndCorruptFrames:
    def _crashed_log(self, tmp_path, inserts=4):
        directory = tmp_path / "snap"
        index = _build_wal_index(directory)
        for vector in _extra(7, inserts):
            index.insert(vector)
        _simulate_crash(index)
        return directory, directory / WAL_FILE

    def test_torn_final_record_truncated_on_replay(self, tmp_path):
        directory, wal_path = self._crashed_log(tmp_path)
        intact = wal_path.stat().st_size
        # Tear the final frame: drop the last 5 bytes of its payload.
        with open(wal_path, "r+b") as handle:
            handle.truncate(intact - 5)
        recovered = open_index(directory)
        try:
            assert recovered.count == BASE_N + 3
            oracle = _oracle(np.vstack([_base_data(), _extra(7, 3)]))
            _assert_parity(recovered, oracle, _base_data()[:4])
            oracle.close()
        finally:
            recovered.close()
        # The torn tail was repaired away: the file now ends at the last
        # good frame and replays clean.
        records, dropped = replay_wal(wal_path)
        assert dropped == 0 and len(records) == 3

    def test_torn_header_truncated_on_replay(self, tmp_path):
        directory, wal_path = self._crashed_log(tmp_path)
        first_size = _frame_sizes(wal_path)[0]
        with open(wal_path, "r+b") as handle:
            handle.truncate(first_size + 3)  # 3 bytes of a header
        recovered = open_index(directory)
        try:
            assert recovered.count == BASE_N + 1
        finally:
            recovered.close()

    def test_bit_flipped_crc_drops_frame(self, tmp_path):
        directory, wal_path = self._crashed_log(tmp_path)
        sizes = _frame_sizes(wal_path)
        # Flip one payload byte inside the final frame.
        offset = sum(sizes[:-1]) + _HEADER.size + 2
        _flip_byte(wal_path, offset)
        recovered = open_index(directory)
        try:
            assert recovered.count == BASE_N + 3
            oracle = _oracle(np.vstack([_base_data(), _extra(7, 3)]))
            _assert_parity(recovered, oracle, _base_data()[:4])
            oracle.close()
        finally:
            recovered.close()

    def test_corrupt_middle_frame_drops_tail(self, tmp_path):
        directory, wal_path = self._crashed_log(tmp_path)
        sizes = _frame_sizes(wal_path)
        _flip_byte(wal_path, sum(sizes[:2]) + _HEADER.size + 1)
        recovered = open_index(directory)
        try:
            # Frames 0-1 survive; the corrupt third frame and everything
            # after it are gone (replay cannot trust frame boundaries
            # past a bad CRC).
            assert recovered.count == BASE_N + 2
            oracle = _oracle(np.vstack([_base_data(), _extra(7, 2)]))
            _assert_parity(recovered, oracle, _base_data()[:4])
            oracle.close()
        finally:
            recovered.close()

    def test_clean_log_is_not_rewritten(self, tmp_path):
        directory, wal_path = self._crashed_log(tmp_path)
        before = wal_path.read_bytes()
        recovered = open_index(directory)
        recovered.close()
        assert wal_path.read_bytes() == before


def _frame_sizes(wal_path):
    sizes = []
    blob = wal_path.read_bytes()
    offset = 0
    while offset < len(blob):
        length, _ = _HEADER.unpack_from(blob, offset)
        sizes.append(_HEADER.size + length)
        offset += _HEADER.size + length
    return sizes


def _flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestReplayIdempotence:
    def test_replay_twice_equals_once(self, tmp_path):
        directory = tmp_path / "snap"
        index = _build_wal_index(directory)
        for vector in _extra(11, 6):
            index.insert(vector)
        index.delete(4)
        _simulate_crash(index)

        oracle = _oracle(np.vstack([_base_data(), _extra(11, 6)]), {4})
        for _ in range(2):  # two recoveries over the same surviving log
            recovered = open_index(directory)
            assert recovered.count == BASE_N + 6
            _assert_parity(recovered, oracle, _base_data()[:4])
            _simulate_crash(recovered)
        oracle.close()

    def test_crash_between_publish_and_truncate(self, tmp_path,
                                                monkeypatch):
        """The narrowest compaction crash window: the new generation is
        published but the log was never truncated.  Replay must skip
        every already-folded record instead of double-applying it."""
        directory = tmp_path / "snap"
        index = _build_wal_index(directory)
        for vector in _extra(13, 5):
            index.insert(vector)
        index.delete(1)
        monkeypatch.setattr(WriteAheadLog, "truncate", lambda self: None)
        index.compact()
        monkeypatch.undo()
        _simulate_crash(index)

        assert (directory / WAL_FILE).stat().st_size > 0  # stale log
        recovered = open_index(directory)
        try:
            assert recovered.count == BASE_N + 5
            assert recovered.generation == 1
            oracle = _oracle(np.vstack([_base_data(), _extra(13, 5)]), {1})
            _assert_parity(recovered, oracle, _base_data()[:4])
            oracle.close()
        finally:
            recovered.close()


class TestGenerationLifecycle:
    def test_compaction_publishes_current_and_truncates(self, tmp_path):
        directory = tmp_path / "snap"
        index = _build_wal_index(directory)
        for vector in _extra(17, 4):
            index.insert(vector)
        generation = index.compact()
        assert generation == 1
        assert read_current(str(directory)) == "gen-000001"
        assert os.path.getsize(directory / WAL_FILE) == 0
        target = resolve_snapshot_dir(str(directory))
        assert os.path.basename(target) == "gen-000001"
        index.close()

    def test_save_refuses_uncompacted_delta(self, tmp_path):
        directory = tmp_path / "snap"
        index = _build_wal_index(directory)
        index.insert(_extra(19, 1)[0])
        with pytest.raises(PersistenceError, match="compact"):
            save_index(index, tmp_path / "elsewhere")
        index.compact()
        # Once folded, saving works again (to the file-backed index's own
        # generation directory, as for any file-backed index).
        save_index(index, resolve_snapshot_dir(str(directory)))
        index.close()

    def test_old_generations_pruned(self, tmp_path):
        directory = tmp_path / "snap"
        index = _build_wal_index(directory)
        for round_number in range(3):
            index.insert(_extra(23 + round_number, 1)[0])
            index.compact()
        generations = sorted(name for name in os.listdir(directory)
                             if name.startswith("gen-"))
        # Current + previous are kept (the previous one may still be
        # mapped by readers); older generations are gone.
        assert generations == ["gen-000002", "gen-000003"]
        index.close()


class TestNoResyncOnWritePath:
    """PR regression guard: WAL-mode writes must never restart worker
    pools or rewrite the snapshot — the O(n) resync the WAL replaces."""

    def test_process_insert_keeps_pool_and_snapshot(self, tmp_path,
                                                    monkeypatch):
        directory = tmp_path / "snap"
        spec = IndexSpec(params=_params(),
                         execution=Execution(kind="process", workers=2))
        index = build(spec, _base_data(), storage_dir=str(directory))
        try:
            index.query(_base_data()[0], 3)  # spin the pool up
            resets = []
            saves = []
            monkeypatch.setattr(
                SnapshotWorkerPool, "reset",
                lambda self: resets.append(self))
            import repro.core.persistence as persistence
            real_save = persistence.save_index
            monkeypatch.setattr(
                persistence, "save_index",
                lambda *a, **kw: saves.append(a) or real_save(*a, **kw))
            for vector in _extra(29, 8):
                index.insert(vector)
            index.delete(5)
            assert resets == []
            assert saves == []
            assert not index._snapshot_dirty
            oracle = _oracle(np.vstack([_base_data(), _extra(29, 8)]), {5})
            _assert_parity(index, oracle, _base_data()[:3])
            oracle.close()
        finally:
            monkeypatch.undo()
            index.close()

    def test_router_insert_keeps_manifest_clean(self, tmp_path):
        from repro.core import Topology
        directory = tmp_path / "snap"
        spec = IndexSpec(params=_params(), topology=Topology(shards=2),
                         execution=Execution(wal=True))
        router = build(spec, _base_data(), storage_dir=str(directory))
        try:
            manifest_before = (directory / "manifest.json").read_bytes()
            for vector in _extra(31, 6):
                router.insert(vector)
            router.delete(9)
            assert not router._manifest_dirty
            assert (directory / "manifest.json").read_bytes() \
                == manifest_before
            oracle = _oracle(np.vstack([_base_data(), _extra(31, 6)]), {9})
            _assert_parity(router, oracle, _base_data()[:3])
            oracle.close()
        finally:
            router.close()
