"""Targeted edge-case tests across modules."""

import numpy as np
import pytest

from repro.btree import BPlusTree
from repro.eval.harness import _padded_ratio
from repro.storage import FilePageStore, UInt64Codec, UIntCodec


class TestDuplicateKeysAcrossLeaves:
    def test_get_all_spans_leaf_boundaries(self):
        """Ten identical keys with 2-entry leaves force duplicates across
        five leaves; get_all must walk the sibling chain."""
        kc, vc = UIntCodec(8), UInt64Codec()
        tree = BPlusTree(kc, vc, leaf_capacity_override=2)
        entries = [(5, v) for v in range(10)] + [(9, 99)]
        tree.bulk_load((kc.encode(k), vc.encode(v))
                       for k, v in sorted(entries))
        values = sorted(vc.decode(raw) for raw in tree.get_all(kc.encode(5)))
        assert values == list(range(10))
        assert [vc.decode(raw) for raw in tree.get_all(kc.encode(9))] == [99]

    def test_nearest_with_massive_duplication(self):
        kc, vc = UIntCodec(8), UInt64Codec()
        tree = BPlusTree(kc, vc, leaf_capacity_override=3)
        tree.bulk_load((kc.encode(7), vc.encode(v)) for v in range(20))
        got = tree.nearest(kc.encode(7), 20)
        assert len(got) == 20
        assert all(kc.decode(k) == 7 for k, _ in got)


class TestPaddedRatio:
    def test_empty_results_get_worst_case_padding(self):
        true = np.asarray([1.0, 2.0])
        value = _padded_ratio(true, np.asarray([]), k=2)
        assert value > 1.0

    def test_short_results_padded_with_own_worst(self):
        true = np.asarray([1.0, 2.0, 4.0])
        value = _padded_ratio(true, np.asarray([1.0]), k=3)
        # Pads ranks 2-3 with 1.0: (1/1 + 1/2 + 1/4) / 3.
        assert value == pytest.approx((1.0 + 0.5 + 0.25) / 3)

    def test_full_results_unchanged(self):
        true = np.asarray([1.0, 2.0])
        value = _padded_ratio(true, np.asarray([2.0, 2.0]), k=2)
        assert value == pytest.approx(1.5)


class TestFilePageStoreLifecycle:
    def test_grow_after_reopen(self, tmp_path):
        path = tmp_path / "grow.pages"
        store = FilePageStore(path, page_size=64)
        first = store.allocate()
        store.write(first, b"one")
        store.close()
        reopened = FilePageStore(path, page_size=64)
        second = reopened.allocate()
        assert second == 1
        reopened.write(second, b"two")
        assert reopened.read(0).startswith(b"one")
        assert reopened.read(1).startswith(b"two")
        reopened.close()

    def test_write_after_close_rejected(self, tmp_path):
        store = FilePageStore(tmp_path / "x.pages", page_size=64)
        page = store.allocate()
        store.close()
        from repro.storage import StorageError
        with pytest.raises(StorageError):
            store.write(page, b"late")

    def test_double_close_is_safe(self, tmp_path):
        store = FilePageStore(tmp_path / "y.pages", page_size=64)
        store.close()
        store.close()


class TestHilbertExtremes:
    def test_maximum_coordinate_round_trip(self):
        from repro.hilbert import HilbertCurve
        curve = HilbertCurve(4, 8)
        point = [255, 255, 255, 255]
        assert curve.decode(curve.encode(point)) == point

    def test_order_62_single_dim(self):
        from repro.hilbert import HilbertCurve
        curve = HilbertCurve(1, 62)
        value = (1 << 62) - 1
        assert curve.encode([value]) == value

    def test_batch_of_one(self):
        from repro.hilbert import HilbertCurve
        curve = HilbertCurve(3, 5)
        keys = curve.encode_batch(np.asarray([[1, 2, 3]]))
        assert keys.shape == (1,)
        assert curve.decode(int(keys[0])) == [1, 2, 3]
