"""Packed-array read path vs the node-path B+-tree oracle.

The packed layout (:mod:`repro.btree.packed`) must be *indistinguishable*
from walking the serialized nodes: same entries from ``range``, same
entries in the same order from ``nearest``, and the same synthesized
page-read accounting (total, random, sequential) — the bench numbers in
EXPERIMENTS.md are only meaningful if the array path charges the I/O the
node path would have performed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.btree import BPlusTree
from repro.btree.packed import PackedTree, key_kind, supports_packing
from repro.storage import (
    BytesCodec,
    Float64Codec,
    UInt64Codec,
    UIntCodec,
    pack_arrays,
    unpack_arrays,
)


def make_tree(key_codec, leaf_cap=4, cache=0):
    return BPlusTree(key_codec, UInt64Codec(),
                     leaf_capacity_override=leaf_cap, cache_pages=cache)


def load_int_pairs(tree, keys, fill=1.0):
    pairs = [(tree.key_codec.encode(k), tree.value_codec.encode(i))
             for i, k in enumerate(sorted(keys))]
    tree.bulk_load(pairs, fill=fill)
    return pairs


def node_path_copy(tree, keys, fill=1.0):
    """The oracle: an identical tree with its packed mirror detached."""
    other = make_tree(tree.key_codec, leaf_cap=tree.leaf_capacity)
    load_int_pairs(other, keys, fill=fill)
    other.attach_packed(None)
    return other


def stats_triple(tree):
    return (tree.stats.page_reads, tree.stats.random_reads,
            tree.stats.sequential_reads)


class TestActivation:
    def test_bulk_load_captures_packed(self):
        tree = make_tree(UIntCodec(8))
        load_int_pairs(tree, range(0, 100, 3))
        assert tree.packed_layout is not None
        assert tree.packed_layout.count == len(tree)

    def test_key_kinds(self):
        assert key_kind(UIntCodec(16)) == "uint"
        assert key_kind(UInt64Codec()) == "uint"
        assert key_kind(Float64Codec()) == "float"
        assert key_kind(BytesCodec(8)) is None
        assert not supports_packing(BytesCodec(8))

    def test_opaque_keys_not_captured(self):
        tree = BPlusTree(BytesCodec(4), UInt64Codec(),
                         leaf_capacity_override=4, cache_pages=0)
        tree.bulk_load([(bytes([0, 0, 0, i]), (i).to_bytes(8, "big"))
                        for i in range(10)])
        assert tree.packed_layout is None

    def test_cached_pool_disables_packed_path(self):
        # The synthetic I/O trace models uncached reads, so a warm buffer
        # pool must route through the real node path.
        tree = make_tree(UIntCodec(8), cache=32)
        load_int_pairs(tree, range(50))
        assert tree.nearest_positions(tree.key_codec.encode(7), 5) is None

    def test_insert_invalidates_packed(self):
        tree = make_tree(UIntCodec(8))
        load_int_pairs(tree, range(20))
        tree.insert(tree.key_codec.encode(1000),
                    tree.value_codec.encode(99))
        assert tree.packed_layout is None

    def test_repack_restores_packed(self):
        tree = make_tree(UIntCodec(8))
        load_int_pairs(tree, range(20))
        tree.insert(tree.key_codec.encode(1000),
                    tree.value_codec.encode(99))
        assert tree.repack()
        packed = tree.packed_layout
        assert packed is not None and packed.count == 21
        oracle = [kv for kv in tree.items()]
        tree.attach_packed(None)
        tree.attach_packed(packed)
        low, high = tree.key_codec.encode(0), tree.key_codec.encode(2000)
        assert list(tree.range(low, high)) == oracle

    def test_repack_empty_or_unsupported(self):
        assert not make_tree(UIntCodec(8)).repack()
        opaque = BPlusTree(BytesCodec(4), UInt64Codec(), cache_pages=0)
        opaque.bulk_load([(b"abcd", bytes(8))])
        assert not opaque.repack()

    def test_attach_packed_count_mismatch_rejected(self):
        tree = make_tree(UIntCodec(8))
        load_int_pairs(tree, range(10))
        packed = tree.packed_layout
        other = make_tree(UIntCodec(8))
        load_int_pairs(other, range(7))
        with pytest.raises(ValueError):
            other.attach_packed(packed)


class TestParity:
    """Packed answers and stats vs the node-path oracle."""

    CASES = [
        (UIntCodec(2), range(0, 300, 7), 4, 1.0),
        (UIntCodec(8), [0, 1, 1, 1, 5, 5, 9, 2**40], 2, 1.0),
        (UIntCodec(16), [3**i for i in range(60)], 5, 0.7),
        (Float64Codec(), [-50.0, -1.5, 0.0, 0.25, 3.0, 1e12], 3, 1.0),
    ]

    @pytest.mark.parametrize("codec,keys,leaf_cap,fill", CASES,
                             ids=["u16", "dup-u64", "wide-u128", "f64"])
    def test_range_parity(self, codec, keys, leaf_cap, fill):
        keys = list(keys)
        tree = make_tree(codec, leaf_cap=leaf_cap)
        load_int_pairs(tree, keys, fill=fill)
        oracle = node_path_copy(tree, keys, fill=fill)
        assert tree.packed_layout is not None
        probes = [(min(keys), max(keys)), (keys[0], keys[0]),
                  (min(keys), keys[len(keys) // 2])]
        for low, high in probes:
            lo, hi = codec.encode(low), codec.encode(high)
            tree.stats.reset(), oracle.stats.reset()
            assert list(tree.range(lo, hi)) == list(oracle.range(lo, hi))
            assert stats_triple(tree) == stats_triple(oracle)

    @pytest.mark.parametrize("codec,keys,leaf_cap,fill", CASES,
                             ids=["u16", "dup-u64", "wide-u128", "f64"])
    def test_nearest_parity(self, codec, keys, leaf_cap, fill):
        keys = list(keys)
        tree = make_tree(codec, leaf_cap=leaf_cap)
        load_int_pairs(tree, keys, fill=fill)
        oracle = node_path_copy(tree, keys, fill=fill)
        for probe in {min(keys), max(keys), keys[len(keys) // 2]}:
            for count in (1, 3, len(keys), len(keys) + 5):
                raw = codec.encode(probe)
                tree.stats.reset(), oracle.stats.reset()
                assert tree.nearest(raw, count) == oracle.nearest(raw, count)
                assert stats_triple(tree) == stats_triple(oracle)

    def test_post_insert_fallback_matches(self):
        tree = make_tree(UIntCodec(8))
        load_int_pairs(tree, range(0, 60, 2))
        tree.insert(tree.key_codec.encode(31), tree.value_codec.encode(77))
        oracle = make_tree(UIntCodec(8))
        load_int_pairs(oracle, range(0, 60, 2))
        oracle.insert(oracle.key_codec.encode(31),
                      oracle.value_codec.encode(77))
        oracle.attach_packed(None)
        raw = tree.key_codec.encode(30)
        assert tree.nearest(raw, 8) == oracle.nearest(raw, 8)
        assert list(tree.range(tree.key_codec.encode(25),
                               tree.key_codec.encode(40))) == \
            list(oracle.range(oracle.key_codec.encode(25),
                              oracle.key_codec.encode(40)))

    @given(st.lists(st.integers(min_value=0, max_value=2**31),
                    min_size=1, max_size=80),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_nearest_property(self, keys, leaf_cap, probe, count):
        tree = make_tree(UIntCodec(8), leaf_cap=leaf_cap)
        load_int_pairs(tree, keys)
        oracle = node_path_copy(tree, keys)
        raw = tree.key_codec.encode(probe)
        tree.stats.reset(), oracle.stats.reset()
        assert tree.nearest(raw, count) == oracle.nearest(raw, count)
        assert stats_triple(tree) == stats_triple(oracle)

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=60),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_range_property(self, keys, leaf_cap, bound_a, bound_b):
        low, high = sorted((bound_a, bound_b))
        tree = make_tree(UIntCodec(8), leaf_cap=leaf_cap)
        load_int_pairs(tree, keys)
        oracle = node_path_copy(tree, keys)
        lo = tree.key_codec.encode(low)
        hi = tree.key_codec.encode(high)
        tree.stats.reset(), oracle.stats.reset()
        assert list(tree.range(lo, hi)) == list(oracle.range(lo, hi))
        assert stats_triple(tree) == stats_triple(oracle)


class TestSerialization:
    def test_pack_unpack_round_trip(self):
        tree = make_tree(UIntCodec(16), leaf_cap=3)
        load_int_pairs(tree, [5**i for i in range(40)], fill=0.8)
        packed = tree.packed_layout
        buffer = pack_arrays(packed.to_arrays())
        restored = PackedTree.from_arrays(tree.key_codec,
                                          unpack_arrays(buffer))
        assert restored.count == packed.count
        np.testing.assert_array_equal(restored.keys_raw, packed.keys_raw)
        np.testing.assert_array_equal(restored.values_raw,
                                      packed.values_raw)
        np.testing.assert_array_equal(restored.leaf_starts,
                                      packed.leaf_starts)
        key = tree.key_codec.encode(5**7)
        np.testing.assert_array_equal(restored.nearest_positions(key, 9),
                                      packed.nearest_positions(key, 9))

    def test_unpacked_views_are_zero_copy(self):
        tree = make_tree(UIntCodec(8))
        load_int_pairs(tree, range(30))
        buffer = np.frombuffer(pack_arrays(tree.packed_layout.to_arrays()),
                               dtype=np.uint8)
        arrays = unpack_arrays(buffer)
        for array in arrays.values():
            assert array.base is not None
