"""Tests for the parallel-query extension (paper Sec. 5.2.8 / Sec. 6)."""

import numpy as np
import pytest

from repro.core import (
    Execution,
    HDIndex,
    HDIndexParams,
    IndexSpec,
    create_index,
)


def thread_index(p, workers=None):
    """Thread-parallel scans, declared through the spec API."""
    return create_index(IndexSpec(
        params=p, execution=Execution(kind="thread", workers=workers)))


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(88)
    centers = rng.uniform(0.0, 100.0, size=(6, 16))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(60, 16)) for center in centers])
    queries = data[rng.choice(len(data), 8, replace=False)] \
        + rng.normal(0.0, 0.5, size=(8, 16))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


def params(**overrides):
    defaults = dict(num_trees=4, num_references=5, alpha=128, gamma=32,
                    domain=(0.0, 100.0), seed=0)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


class TestParallelHDIndex:
    def test_results_identical_to_sequential(self, workload):
        """The paper's claim: per-tree scans are independent, so
        parallelising them must not change the answer set."""
        data, queries = workload
        sequential = HDIndex(params())
        parallel = thread_index(params(), workers=4)
        sequential.build(data)
        parallel.build(data)
        for query in queries:
            ids_seq, dists_seq = sequential.query(query, 10)
            ids_par, dists_par = parallel.query(query, 10)
            np.testing.assert_array_equal(ids_seq, ids_par)
            np.testing.assert_allclose(dists_seq, dists_par)
        parallel.close()

    def test_ptolemaic_path_identical(self, workload):
        data, queries = workload
        sequential = HDIndex(params(use_ptolemaic=True))
        parallel = thread_index(params(use_ptolemaic=True))
        sequential.build(data)
        parallel.build(data)
        ids_seq, _ = sequential.query(queries[0], 10)
        ids_par, _ = parallel.query(queries[0], 10)
        np.testing.assert_array_equal(ids_seq, ids_par)
        parallel.close()

    def test_worker_count_respected(self, workload):
        data, queries = workload
        index = thread_index(params(), workers=2)
        index.build(data)
        index.query(queries[0], 5)
        assert index.last_query_stats().extra["workers"] == 2
        index.close()

    def test_context_manager(self, workload):
        data, queries = workload
        with thread_index(params()) as index:
            index.build(data)
            ids, _ = index.query(queries[0], 5)
            assert len(ids) == 5

    def test_close_is_idempotent(self, workload):
        data, _ = workload
        index = thread_index(params())
        index.build(data)
        index.close()
        index.close()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            Execution(kind="thread", workers=0)

    def test_updates_still_work(self, workload):
        data, _ = workload
        index = thread_index(params())
        index.build(data)
        new_point = np.full(16, 42.0)
        new_id = index.insert(new_point)
        ids, _ = index.query(new_point, 1)
        assert ids[0] == new_id
        index.delete(new_id)
        ids, _ = index.query(new_point, 1)
        assert ids[0] != new_id
        index.close()


class TestDiskBackedIndex:
    def test_storage_dir_creates_page_files(self, workload, tmp_path):
        data, queries = workload
        index = HDIndex(params(storage_dir=str(tmp_path / "hd")))
        index.build(data)
        files = sorted(p.name for p in (tmp_path / "hd").iterdir())
        assert "descriptors.pages" in files
        assert sum(name.startswith("tree_") for name in files) == 4
        ids, _ = index.query(queries[0], 5)
        assert len(ids) == 5
        index.close()

    def test_disk_and_memory_results_match(self, workload, tmp_path):
        data, queries = workload
        memory_index = HDIndex(params())
        disk_index = HDIndex(params(storage_dir=str(tmp_path / "hd2")))
        memory_index.build(data)
        disk_index.build(data)
        for query in queries[:4]:
            ids_mem, _ = memory_index.query(query, 10)
            ids_disk, _ = disk_index.query(query, 10)
            np.testing.assert_array_equal(ids_mem, ids_disk)
        disk_index.close()

    def test_on_disk_footprint_matches_accounting(self, workload, tmp_path):
        data, _ = workload
        index = HDIndex(params(storage_dir=str(tmp_path / "hd3")))
        index.build(data)
        on_disk = sum(p.stat().st_size
                      for p in (tmp_path / "hd3").iterdir())
        assert on_disk == index.total_size_bytes()
        index.close()
