"""Reproduction of the paper's running example (Table 2 / Fig. 3).

Table 2 lists eight 4-dimensional objects, splits them into two 2-D
partitions, and gives each object's Hilbert key *rank* along each curve
(Fig. 3a/3b draw the curves on a 4x4 grid, i.e. order ω = 2).  Our Butz
curve reproduces the paper's HK1 column rank-for-rank, including the
O3/O6 tie — evidence the implementation traces the same curve the authors
used.
"""

import numpy as np
import pytest

from repro.hilbert import GridQuantizer, HilbertCurve

#: Table 2 of the paper: object -> (dim1, dim2, dim3, dim4).
OBJECTS = {
    "O1": [0.20, 0.74, 0.68, 0.73],
    "O2": [0.84, 0.34, 0.49, 0.81],
    "O3": [0.97, 0.64, 0.32, 0.93],
    "O4": [0.42, 0.86, 0.12, 0.82],
    "O5": [0.62, 0.09, 0.56, 0.07],
    "O6": [0.84, 0.59, 0.49, 0.73],
    "O7": [0.05, 0.43, 0.52, 0.82],
    "O8": [0.40, 0.24, 0.10, 0.64],
}

#: Table 2's HK 1 and HK 2 columns (key ranks along each curve).
PAPER_HK1 = {"O1": 3, "O2": 6, "O3": 5, "O4": 4,
             "O5": 7, "O6": 5, "O7": 2, "O8": 1}
PAPER_HK2 = {"O1": 5, "O2": 5, "O3": 3, "O4": 2,
             "O5": 7, "O6": 4, "O7": 6, "O8": 1}

ORDER = 2   # Fig. 3 draws a 4x4 grid per partition


def dense_ranks(names, keys):
    """1-based dense ranking (equal keys share a rank, as in Table 2)."""
    order_idx = np.argsort([int(k) for k in keys], kind="stable")
    ranks = {}
    rank, previous = 0, None
    for index in order_idx:
        value = int(keys[index])
        if value != previous:
            rank += 1
            previous = value
        ranks[names[index]] = rank
    return ranks


@pytest.fixture(scope="module")
def computed_ranks():
    names = list(OBJECTS)
    data = np.asarray([OBJECTS[name] for name in names])
    quantizer = GridQuantizer(0.0, 1.0, ORDER)
    curve = HilbertCurve(2, ORDER)
    keys_1 = curve.encode_batch(quantizer.quantize(data[:, :2]))
    keys_2 = curve.encode_batch(quantizer.quantize(data[:, 2:]))
    return dense_ranks(names, keys_1), dense_ranks(names, keys_2)


class TestTable2:
    def test_hk1_matches_paper_exactly(self, computed_ranks):
        ranks_1, _ = computed_ranks
        assert ranks_1 == PAPER_HK1

    def test_hk1_preserves_paper_tie(self, computed_ranks):
        """O3 and O6 share Hilbert key rank 5 in the paper's partition 1."""
        ranks_1, _ = computed_ranks
        assert ranks_1["O3"] == ranks_1["O6"] == 5

    def test_hk2_matches_within_one_cell(self, computed_ranks):
        """HK2 agrees on 7/8 objects; the O2/O3 pair differs by one grid
        cell (a boundary effect of the coarse order-2 grid on which the
        figure is drawn)."""
        _, ranks_2 = computed_ranks
        agreements = sum(ranks_2[name] == PAPER_HK2[name]
                         for name in OBJECTS)
        assert agreements >= 7
        for name in OBJECTS:
            assert abs(ranks_2[name] - PAPER_HK2[name]) <= 2

    def test_fig3a_narrative_holds(self, computed_ranks):
        """Sec. 3.1's narrative about Fig. 3: O7 and O1 have adjacent keys
        in partition 1; O8 and O4 are close in space but far in HK1, yet
        adjacent in HK2 — the multi-curve redundancy argument."""
        ranks_1, ranks_2 = computed_ranks
        assert abs(ranks_1["O7"] - ranks_1["O1"]) == 1
        assert abs(ranks_1["O8"] - ranks_1["O4"]) >= 2
        assert abs(ranks_2["O8"] - ranks_2["O4"]) == 1
