"""Unit tests for the metadata subsystem: predicate algebra semantics,
JSON/pickle round-trips, hashability, and the columnar MetadataStore."""

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.meta import (
    And,
    Eq,
    In,
    MetadataStore,
    Not,
    Or,
    Predicate,
    Range,
    coerce_predicate,
    predicate_from_dict,
)
from repro.meta.predicates import validate_json_safe

ROWS = [
    {"label": 0, "score": 0.5, "color": "red"},
    {"label": 1, "score": 1.5, "color": "green"},
    {"label": 2, "score": 2.5, "color": "blue"},
    {"label": 0, "score": 3.5, "color": "red"},
    {"label": 1, "score": 4.5, "color": "chartreuse"},
]


@pytest.fixture()
def store():
    return MetadataStore.from_rows(ROWS)


def oracle_mask(predicate):
    return np.asarray([predicate.matches(row) for row in ROWS])


class TestPredicateSemantics:
    @pytest.mark.parametrize("predicate", [
        Eq("label", 1),
        Eq("color", "red"),
        In("label", [0, 2]),
        In("color", ("red", "blue")),
        Range("score", low=1.0, high=3.0),
        Range("score", low=2.0),
        Range("score", high=2.0),
        Range("label", low=1),
        And(Eq("label", 0), Eq("color", "red")),
        Or(Eq("color", "blue"), Range("score", high=1.0)),
        Not(Eq("label", 1)),
        And(Or(Eq("label", 0), Eq("label", 2)),
            Not(Eq("color", "blue"))),
    ])
    def test_mask_matches_scalar_oracle(self, store, predicate):
        """The vectorised bulk mask and the scalar delta path agree."""
        np.testing.assert_array_equal(predicate.mask(store),
                                      oracle_mask(predicate))

    def test_operator_sugar(self, store):
        sugar = (Eq("label", 0) | Eq("label", 2)) & ~Eq("color", "blue")
        explicit = And(Or(Eq("label", 0), Eq("label", 2)),
                       Not(Eq("color", "blue")))
        np.testing.assert_array_equal(sugar.mask(store),
                                      explicit.mask(store))

    def test_range_bounds_inclusive(self, store):
        mask = Range("score", low=1.5, high=3.5).mask(store)
        np.testing.assert_array_equal(mask,
                                      [False, True, True, True, False])

    def test_combinator_requires_clauses(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(TypeError):
            Or(Eq("label", 1), "not a predicate")

    def test_columns(self):
        predicate = And(Eq("label", 1), Or(Range("score", low=1.0),
                                           Not(Eq("color", "red"))))
        assert predicate.columns() == frozenset(
            ("label", "score", "color"))

    def test_unknown_column_fails_fast(self, store):
        with pytest.raises(ValueError, match="unknown metadata column"):
            Eq("nope", 1).mask(store)

    def test_type_mismatch_rejected(self, store):
        with pytest.raises(TypeError):
            Eq("label", "red").mask(store)
        with pytest.raises(TypeError):
            Eq("color", 3).mask(store)
        with pytest.raises(TypeError):
            Eq("label", True).mask(store)


def predicates():
    """Hypothesis strategy for arbitrary predicate trees over two
    columns (int 'label', str 'color')."""
    leaves = st.one_of(
        st.builds(Eq, st.just("label"), st.integers(-3, 3)),
        st.builds(Eq, st.just("color"),
                  st.sampled_from(["red", "green", "blue"])),
        st.builds(In, st.just("label"),
                  st.lists(st.integers(-3, 3), min_size=1, max_size=3)),
        st.builds(Range, st.just("label"), st.integers(-3, 3),
                  st.integers(-3, 3)),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(lambda a, b: And(a, b), children, children),
            st.builds(lambda a, b: Or(a, b), children, children),
            st.builds(Not, children),
        ),
        max_leaves=6,
    )


class TestPredicateRoundTrips:
    @given(predicate=predicates())
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_identity(self, predicate):
        wire = json.loads(json.dumps(predicate.to_dict()))
        assert predicate_from_dict(wire) == predicate

    @given(predicate=predicates())
    @settings(max_examples=30, deadline=None)
    def test_pickle_and_hash(self, predicate):
        clone = pickle.loads(pickle.dumps(predicate))
        assert clone == predicate
        assert hash(clone) == hash(predicate)
        assert len({clone, predicate}) == 1

    def test_coerce_predicate_forms(self):
        predicate = And(Eq("label", 1), Not(Eq("color", "red")))
        assert coerce_predicate(None) is None
        assert coerce_predicate(predicate) is predicate
        assert coerce_predicate(predicate.to_dict()) == predicate
        with pytest.raises(TypeError):
            coerce_predicate(42)
        with pytest.raises(ValueError):
            predicate_from_dict({"op": "xor"})
        with pytest.raises(ValueError):
            predicate_from_dict({"nope": 1})

    def test_validate_json_safe(self):
        validate_json_safe(And(Eq("a", 1), In("b", ["x"])))
        with pytest.raises(TypeError):
            validate_json_safe(Eq("a", np.int64(3)))
        with pytest.raises(TypeError):
            validate_json_safe(In("a", [object()]))


class TestMetadataStore:
    def test_from_rows_types(self, store):
        assert store.count == 5
        assert store.names == ("color", "label", "score")
        assert store.kind("label") == "int"
        assert store.kind("score") == "float"
        assert store.kind("color") == "str"
        assert store.row(4) == ROWS[4]
        assert store.rows([0, 2]) == [ROWS[0], ROWS[2]]

    def test_packed_round_trip(self, store):
        packed = store.to_packed()
        clone = MetadataStore.from_packed(packed)
        assert clone.names == store.names
        for name in store.names:
            np.testing.assert_array_equal(clone.column(name),
                                          store.column(name))
        # A uint8 view (the mmap load path) decodes identically.
        view = np.frombuffer(packed, dtype=np.uint8)
        viewed = MetadataStore.from_packed(view)
        assert viewed.rows(range(5)) == store.rows(range(5))

    def test_append_rows_widens_strings(self, store):
        store.append_rows([{"label": 9, "score": 9.0,
                            "color": "ultraviolet-extra-wide"}])
        assert store.count == 6
        assert store.row(5)["color"] == "ultraviolet-extra-wide"
        assert store.row(0)["color"] == "red"

    def test_append_rows_validation(self, store):
        with pytest.raises(ValueError, match="differ from store columns"):
            store.append_rows([{"label": 1}])
        with pytest.raises(TypeError):
            store.append_rows([{"label": "oops", "score": 0.0,
                                "color": "red"}])

    def test_slice_is_detached(self, store):
        part = store.slice(1, 3)
        assert part.count == 2
        assert part.rows(range(2)) == ROWS[1:3]
        part.append_rows([{"label": 7, "score": 7.0, "color": "x"}])
        assert store.count == 5

    def test_from_rows_validation(self):
        with pytest.raises(ValueError):
            MetadataStore.from_rows([])
        with pytest.raises(ValueError, match="differ from row 0"):
            MetadataStore.from_rows([{"a": 1}, {"b": 2}])
        with pytest.raises(TypeError, match="bool"):
            MetadataStore.from_rows([{"a": True}])
        with pytest.raises(TypeError, match="mixes strings"):
            MetadataStore.from_rows([{"a": 1}, {"a": "x"}])

    def test_check_columns(self, store):
        store.check_columns(("label", "color"))
        with pytest.raises(ValueError, match="unknown metadata column"):
            store.check_columns(("label", "missing"))

    def test_mixed_int_float_promotes(self):
        mixed = MetadataStore.from_rows([{"v": 1}, {"v": 2.5}])
        assert mixed.kind("v") == "float"
        np.testing.assert_array_equal(mixed.column("v"), [1.0, 2.5])


def test_predicate_base_is_abstract(store):
    base = Predicate()
    for call in (lambda: base.mask(store), lambda: base.matches({}),
                 base.to_dict, base.columns):
        with pytest.raises(NotImplementedError):
            call()
