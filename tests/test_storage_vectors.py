"""Unit tests for the paged descriptor heap file."""

import numpy as np
import pytest

from repro.storage import InMemoryPageStore, StorageError, VectorHeapFile
from repro.storage.vectors import heap_file_from_array


class TestVectorHeapFile:
    def test_append_and_fetch_round_trip(self):
        heap = VectorHeapFile(dim=8, dtype=np.float32)
        vectors = np.arange(24, dtype=np.float32).reshape(3, 8)
        ids = heap.append_batch(vectors)
        assert list(ids) == [0, 1, 2]
        for object_id in ids:
            np.testing.assert_array_equal(heap.fetch(object_id),
                                          vectors[object_id])

    def test_fetch_many_preserves_order(self):
        heap = heap_file_from_array(
            np.arange(40, dtype=np.float32).reshape(5, 8))
        out = heap.fetch_many([3, 1, 4])
        np.testing.assert_array_equal(out[0], np.arange(24, 32))
        np.testing.assert_array_equal(out[1], np.arange(8, 16))

    def test_scan_returns_everything_in_order(self):
        data = np.random.default_rng(0).normal(size=(17, 6)).astype(np.float32)
        heap = heap_file_from_array(data)
        np.testing.assert_array_equal(heap.scan(), data)

    def test_records_packed_per_page(self):
        heap = VectorHeapFile(dim=4, dtype=np.float32,
                              store=InMemoryPageStore(page_size=64))
        # 4 × 4 B = 16 B per record -> 4 records per 64 B page.
        assert heap.records_per_page == 4
        heap.append_batch(np.zeros((9, 4), dtype=np.float32))
        assert heap.size_bytes() == 3 * 64  # ceil(9/4) pages

    def test_fetch_counts_page_reads(self):
        data = np.zeros((8, 4), dtype=np.float32)
        heap = VectorHeapFile(dim=4, dtype=np.float32,
                              store=InMemoryPageStore(page_size=64))
        heap.append_batch(data)
        reads_before = heap.stats.page_reads
        heap.fetch(0)
        heap.fetch(7)
        assert heap.stats.page_reads == reads_before + 2

    def test_record_spanning_multiple_pages(self):
        # 48 dims × 4 B = 192 B record on 64 B pages -> 3 pages per record.
        heap = VectorHeapFile(dim=48, dtype=np.float32,
                              store=InMemoryPageStore(page_size=64))
        vectors = np.random.default_rng(1).normal(
            size=(3, 48)).astype(np.float32)
        heap.append_batch(vectors)
        for object_id in range(3):
            np.testing.assert_array_equal(heap.fetch(object_id),
                                          vectors[object_id])
        reads_before = heap.stats.page_reads
        heap.fetch(1)
        assert heap.stats.page_reads == reads_before + 3

    def test_unknown_id_rejected(self):
        heap = heap_file_from_array(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(StorageError):
            heap.fetch(2)
        with pytest.raises(StorageError):
            heap.fetch(-1)

    def test_wrong_shape_rejected(self):
        heap = VectorHeapFile(dim=4)
        with pytest.raises(ValueError):
            heap.append_batch(np.zeros((2, 5), dtype=np.float32))

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            VectorHeapFile(dim=0)

    def test_dtype_is_respected(self):
        heap = VectorHeapFile(dim=4, dtype=np.float64)
        heap.append(np.asarray([0.1, 0.2, 0.3, 0.4]))
        got = heap.fetch(0)
        assert got.dtype == np.float64
        np.testing.assert_allclose(got, [0.1, 0.2, 0.3, 0.4])

    def test_float32_rounding_is_visible(self):
        heap = VectorHeapFile(dim=1, dtype=np.float32)
        heap.append(np.asarray([1.0 + 1e-12]))
        assert heap.fetch(0)[0] == np.float32(1.0)

    def test_len_tracks_appends(self):
        heap = VectorHeapFile(dim=4)
        assert len(heap) == 0
        heap.append_batch(np.zeros((5, 4), dtype=np.float32))
        assert len(heap) == 5

    def test_empty_scan(self):
        heap = VectorHeapFile(dim=3)
        assert heap.scan().shape == (0, 3)

    def test_cache_pages_reduces_reads(self):
        data = np.zeros((8, 4), dtype=np.float32)
        cached = VectorHeapFile(dim=4, dtype=np.float32,
                                store=InMemoryPageStore(page_size=64),
                                cache_pages=4)
        cached.append_batch(data)
        cached.stats.reset()
        cached.fetch(0)   # page still resident from the append
        cached.fetch(1)   # same page
        assert cached.stats.page_reads == 0
        assert cached.stats.cache_hits == 2


class TestEmptyGather:
    """Regression: an empty id set (the Algo.-2 refinement stage when no
    candidate survives) must return an empty result WITHOUT touching the
    store, the buffer pool, or the IOStats accountant."""

    def _poison(self, heap):
        """Make any store access blow up so the contract is structural,
        not just observed-by-counter."""
        def boom(*_args, **_kwargs):
            raise AssertionError("store touched for an empty gather")
        heap._store.read = boom
        heap.pool.read = boom
        if hasattr(heap._store, "page_matrix"):
            heap._store.page_matrix = boom

    @pytest.mark.parametrize("cache_pages", [0, 4])
    def test_memory_store_untouched(self, cache_pages):
        heap = VectorHeapFile(dim=6, dtype=np.float32,
                              cache_pages=cache_pages)
        heap.append_batch(np.zeros((9, 6), dtype=np.float32))
        snapshot = heap.stats.snapshot()
        self._poison(heap)
        for empty in ([], np.empty(0, dtype=np.int64),
                      np.empty((0,), dtype=np.float64)):
            out = heap.gather(empty)
            assert out.shape == (0, 6) and out.dtype == np.float32
        assert heap.fetch_many([]).shape == (0, 6)
        assert heap.stats.snapshot() == snapshot

    @pytest.mark.parametrize("cache_pages", [0, 4])
    def test_mmap_store_untouched(self, tmp_path, cache_pages):
        from repro.storage import MmapPageStore
        store = MmapPageStore(str(tmp_path / "d.pages"))
        heap = VectorHeapFile(dim=6, dtype=np.float32, store=store,
                              cache_pages=cache_pages)
        heap.append_batch(np.ones((9, 6), dtype=np.float32))
        snapshot = heap.stats.snapshot()
        self._poison(heap)
        out = heap.gather(np.empty(0, dtype=np.int64))
        assert out.shape == (0, 6)
        assert heap.stats.snapshot() == snapshot
        heap._store.close()

    def test_sequential_classification_unperturbed(self):
        """An interleaved empty gather must not disturb the random/
        sequential read classification of its neighbours."""
        data = np.zeros((64, 32), dtype=np.float32)
        plain = heap_file_from_array(data, page_size=256)
        probe = heap_file_from_array(data, page_size=256)
        per_page = plain.records_per_page
        plain.gather([0, per_page, 2 * per_page])
        probe.gather([0, per_page])
        probe.gather([])
        probe.gather([2 * per_page])
        assert probe.stats.snapshot() == plain.stats.snapshot()

    def test_engine_rerank_skips_heap_on_empty_survivors(self):
        """Engine-level: once every point is deleted, query and
        query_batch must answer without a single heap read."""
        from repro.core import HDIndex, HDIndexParams
        data = np.random.default_rng(3).normal(size=(20, 8))
        index = HDIndex(HDIndexParams(num_trees=2, hilbert_order=5,
                                      num_references=3, alpha=8, seed=0))
        index.build(data)
        for object_id in range(20):
            index.delete(object_id)
        self._poison(index.heap)
        ids, dists = index.query(np.zeros(8), k=4)
        assert ids.shape == (0,) and dists.shape == (0,)
        batch_ids, _ = index.query_batch(np.zeros((2, 8)), k=4)
        assert np.all(batch_ids == -1)
