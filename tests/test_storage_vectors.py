"""Unit tests for the paged descriptor heap file."""

import numpy as np
import pytest

from repro.storage import InMemoryPageStore, StorageError, VectorHeapFile
from repro.storage.vectors import heap_file_from_array


class TestVectorHeapFile:
    def test_append_and_fetch_round_trip(self):
        heap = VectorHeapFile(dim=8, dtype=np.float32)
        vectors = np.arange(24, dtype=np.float32).reshape(3, 8)
        ids = heap.append_batch(vectors)
        assert list(ids) == [0, 1, 2]
        for object_id in ids:
            np.testing.assert_array_equal(heap.fetch(object_id),
                                          vectors[object_id])

    def test_fetch_many_preserves_order(self):
        heap = heap_file_from_array(
            np.arange(40, dtype=np.float32).reshape(5, 8))
        out = heap.fetch_many([3, 1, 4])
        np.testing.assert_array_equal(out[0], np.arange(24, 32))
        np.testing.assert_array_equal(out[1], np.arange(8, 16))

    def test_scan_returns_everything_in_order(self):
        data = np.random.default_rng(0).normal(size=(17, 6)).astype(np.float32)
        heap = heap_file_from_array(data)
        np.testing.assert_array_equal(heap.scan(), data)

    def test_records_packed_per_page(self):
        heap = VectorHeapFile(dim=4, dtype=np.float32,
                              store=InMemoryPageStore(page_size=64))
        # 4 × 4 B = 16 B per record -> 4 records per 64 B page.
        assert heap.records_per_page == 4
        heap.append_batch(np.zeros((9, 4), dtype=np.float32))
        assert heap.size_bytes() == 3 * 64  # ceil(9/4) pages

    def test_fetch_counts_page_reads(self):
        data = np.zeros((8, 4), dtype=np.float32)
        heap = VectorHeapFile(dim=4, dtype=np.float32,
                              store=InMemoryPageStore(page_size=64))
        heap.append_batch(data)
        reads_before = heap.stats.page_reads
        heap.fetch(0)
        heap.fetch(7)
        assert heap.stats.page_reads == reads_before + 2

    def test_record_spanning_multiple_pages(self):
        # 48 dims × 4 B = 192 B record on 64 B pages -> 3 pages per record.
        heap = VectorHeapFile(dim=48, dtype=np.float32,
                              store=InMemoryPageStore(page_size=64))
        vectors = np.random.default_rng(1).normal(
            size=(3, 48)).astype(np.float32)
        heap.append_batch(vectors)
        for object_id in range(3):
            np.testing.assert_array_equal(heap.fetch(object_id),
                                          vectors[object_id])
        reads_before = heap.stats.page_reads
        heap.fetch(1)
        assert heap.stats.page_reads == reads_before + 3

    def test_unknown_id_rejected(self):
        heap = heap_file_from_array(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(StorageError):
            heap.fetch(2)
        with pytest.raises(StorageError):
            heap.fetch(-1)

    def test_wrong_shape_rejected(self):
        heap = VectorHeapFile(dim=4)
        with pytest.raises(ValueError):
            heap.append_batch(np.zeros((2, 5), dtype=np.float32))

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            VectorHeapFile(dim=0)

    def test_dtype_is_respected(self):
        heap = VectorHeapFile(dim=4, dtype=np.float64)
        heap.append(np.asarray([0.1, 0.2, 0.3, 0.4]))
        got = heap.fetch(0)
        assert got.dtype == np.float64
        np.testing.assert_allclose(got, [0.1, 0.2, 0.3, 0.4])

    def test_float32_rounding_is_visible(self):
        heap = VectorHeapFile(dim=1, dtype=np.float32)
        heap.append(np.asarray([1.0 + 1e-12]))
        assert heap.fetch(0)[0] == np.float32(1.0)

    def test_len_tracks_appends(self):
        heap = VectorHeapFile(dim=4)
        assert len(heap) == 0
        heap.append_batch(np.zeros((5, 4), dtype=np.float32))
        assert len(heap) == 5

    def test_empty_scan(self):
        heap = VectorHeapFile(dim=3)
        assert heap.scan().shape == (0, 3)

    def test_cache_pages_reduces_reads(self):
        data = np.zeros((8, 4), dtype=np.float32)
        cached = VectorHeapFile(dim=4, dtype=np.float32,
                                store=InMemoryPageStore(page_size=64),
                                cache_pages=4)
        cached.append_batch(data)
        cached.stats.reset()
        cached.fetch(0)   # page still resident from the append
        cached.fetch(1)   # same page
        assert cached.stats.page_reads == 0
        assert cached.stats.cache_hits == 2
