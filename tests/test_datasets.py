"""Unit tests for the synthetic dataset generators and the catalog."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_CATALOG,
    generate_clustered,
    generate_uniform,
    make_dataset,
)


class TestCatalog:
    def test_all_paper_datasets_present(self):
        expected = {"sift10k", "audio", "sun", "sift1m", "yorck", "enron",
                    "glove"}
        assert expected <= set(DATASET_CATALOG)

    def test_table4_attributes(self):
        sift = DATASET_CATALOG["sift10k"]
        assert sift.dim == 128
        assert sift.domain == (0.0, 255.0)
        assert sift.integer_valued
        assert sift.paper_size == 10_000
        audio = DATASET_CATALOG["audio"]
        assert audio.dim == 192
        assert audio.domain == (-1.0, 1.0)
        assert not audio.integer_valued
        sun = DATASET_CATALOG["sun"]
        assert sun.dim == 512
        assert sun.num_trees == 16   # Sec. 5.2.4: τ=16 beyond 500 dims
        glove = DATASET_CATALOG["glove"]
        assert glove.dim == 100
        assert glove.domain == (-10.0, 10.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet")


class TestGeneration:
    def test_shapes_and_domain(self):
        ds = make_dataset("audio", n=300, num_queries=10, seed=1)
        assert ds.data.shape == (300, 192)
        assert ds.queries.shape == (10, 192)
        assert ds.data.min() >= -1.0 and ds.data.max() <= 1.0

    def test_integer_datasets_are_integral(self):
        ds = make_dataset("sift10k", n=100, num_queries=5, seed=2)
        assert np.all(ds.data == np.rint(ds.data))
        assert ds.data.min() >= 0 and ds.data.max() <= 255

    def test_no_duplicate_rows(self):
        ds = make_dataset("sift10k", n=400, num_queries=5, seed=3)
        unique = np.unique(ds.data, axis=0)
        assert unique.shape[0] == ds.data.shape[0]

    def test_seeded_reproducibility(self):
        a = make_dataset("glove", n=200, num_queries=5, seed=4)
        b = make_dataset("glove", n=200, num_queries=5, seed=4)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_different_seeds_differ(self):
        a = make_dataset("glove", n=100, num_queries=5, seed=5)
        b = make_dataset("glove", n=100, num_queries=5, seed=6)
        assert not np.array_equal(a.data, b.data)

    def test_clusteredness(self):
        """Clustered data must have NN distances far below random-pair
        distances — the property that makes ANN indexes work at all."""
        ds = make_dataset("sift10k", n=500, num_queries=5, seed=7)
        rng = np.random.default_rng(0)
        sample = ds.data[rng.choice(500, 50, replace=False)]
        from repro.distance import pairwise_euclidean
        distances = pairwise_euclidean(sample, ds.data)
        distances[distances == 0] = np.inf
        nearest = distances.min(axis=1)
        mean_pair = distances[np.isfinite(distances)].mean()
        assert nearest.mean() < 0.5 * mean_pair

    def test_invalid_sizes_rejected(self):
        spec = DATASET_CATALOG["sift10k"]
        with pytest.raises(ValueError):
            generate_clustered(spec, 0, 5)
        with pytest.raises(ValueError):
            generate_clustered(spec, 10, 0)

    def test_len_and_properties(self):
        ds = make_dataset("enron", n=50, num_queries=3, seed=8)
        assert len(ds) == 50
        assert ds.dim == DATASET_CATALOG["enron"].dim
        assert ds.name == "enron"


class TestUniform:
    def test_uniform_control(self):
        ds = generate_uniform(dim=20, n=100, num_queries=5, seed=0)
        assert ds.data.shape == (100, 20)
        assert 0.0 <= ds.data.min() and ds.data.max() <= 1.0

    def test_custom_domain(self):
        ds = generate_uniform(dim=4, n=50, num_queries=2, seed=1,
                              low=-5.0, high=5.0)
        assert ds.data.min() >= -5.0 and ds.data.max() <= 5.0
