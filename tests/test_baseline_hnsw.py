"""Tests for the HNSW baseline."""

import numpy as np
import pytest

from repro.baselines import HNSW
from repro.eval import exact_knn, recall_at_k


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(41)
    centers = rng.uniform(0.0, 30.0, size=(6, 12))
    data = np.vstack([
        center + rng.normal(0.0, 0.8, size=(50, 12)) for center in centers])
    queries = data[rng.choice(len(data), 8, replace=False)] \
        + rng.normal(0.0, 0.1, size=(8, 12))
    return data, queries


@pytest.fixture(scope="module")
def built(workload):
    data, queries = workload
    index = HNSW(M=8, ef_construction=60, ef_search=60, seed=0)
    index.build(data)
    return index, data, queries


class TestHNSW:
    def test_high_recall(self, built):
        index, data, queries = built
        true_ids, _ = exact_knn(data, queries, k=10)
        recalls = [recall_at_k(true_ids[row], index.query(q, 10)[0], 10)
                   for row, q in enumerate(queries)]
        assert np.mean(recalls) > 0.9

    def test_results_sorted(self, built):
        index, _, queries = built
        _, dists = index.query(queries[0], 10)
        assert np.all(np.diff(dists) >= 0)

    def test_query_point_in_db_found(self, built):
        index, data, _ = built
        ids, dists = index.query(data[17], 1)
        assert ids[0] == 17
        assert dists[0] == pytest.approx(0.0, abs=1e-12)

    def test_layer_degrees_bounded(self, built):
        index, _, _ = built
        for node, layers in enumerate(index._links):
            for level, neighbours in enumerate(layers):
                limit = index.max_layer0 if level == 0 else index.M
                assert len(neighbours) <= limit, (node, level)

    def test_level_zero_contains_everyone(self, built):
        index, data, _ = built
        assert len(index._links) == len(data)
        assert all(len(layers) >= 1 for layers in index._links)

    def test_links_are_valid_node_ids(self, built):
        index, data, _ = built
        n = len(data)
        for layers in index._links:
            for neighbours in layers:
                assert all(0 <= other < n for other in neighbours)

    def test_level_distribution_geometric(self):
        rng_index = HNSW(M=8, seed=3)
        levels = [rng_index._draw_level() for _ in range(4000)]
        share_zero = sum(1 for level in levels if level == 0) / len(levels)
        # P[level = 0] = 1 - 1/M ≈ 0.875 for M = 8.
        assert 0.8 < share_zero < 0.95

    def test_incremental_add(self, built):
        index, data, _ = built
        point = np.full(12, 15.0)
        new_id = index.add(point)
        ids, dists = index.query(point, 1)
        assert ids[0] == new_id
        assert dists[0] == pytest.approx(0.0, abs=1e-12)

    def test_memory_includes_vectors(self, built):
        """The paper's point: HNSW must keep all vectors in RAM."""
        index, data, _ = built
        assert index.memory_bytes() >= data.nbytes

    def test_no_page_reads(self, built):
        index, _, queries = built
        index.query(queries[0], 5)
        assert index.last_query_stats().page_reads == 0

    def test_ef_search_trades_recall(self, workload):
        data, queries = workload
        narrow = HNSW(M=8, ef_construction=60, ef_search=2, seed=1)
        wide = HNSW(M=8, ef_construction=60, ef_search=80, seed=1)
        narrow.build(data)
        wide.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        recall_narrow = np.mean([
            recall_at_k(true_ids[row], narrow.query(q, 10)[0], 10)
            for row, q in enumerate(queries)])
        recall_wide = np.mean([
            recall_at_k(true_ids[row], wide.query(q, 10)[0], 10)
            for row, q in enumerate(queries)])
        assert recall_wide >= recall_narrow

    def test_single_point_index(self):
        index = HNSW(M=4, seed=2)
        index.build(np.zeros((1, 4)))
        ids, _ = index.query(np.zeros(4), 1)
        assert ids[0] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HNSW(M=1)
        with pytest.raises(ValueError):
            HNSW(ef_construction=0)

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            HNSW().query(np.zeros(4), 1)

    def test_k_zero_rejected(self, built):
        index, _, queries = built
        with pytest.raises(ValueError):
            index.query(queries[0], 0)
