"""Tests for HD-Index family save/load persistence."""

import json

import numpy as np
import pytest

from repro.core import (
    HDIndex,
    HDIndexParams,
    PersistenceError,
    ShardRouter,
    ThreadedExecutor,
    load_index,
    save_index,
)
from repro.core.persistence import _materialise_store
from repro.storage.pages import InMemoryPageStore


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(99)
    centers = rng.uniform(0.0, 100.0, size=(5, 16))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(60, 16)) for center in centers])
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.5, size=(6, 16))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


def params(**overrides):
    defaults = dict(num_trees=4, num_references=5, alpha=128, gamma=32,
                    domain=(0.0, 100.0), seed=0)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


class TestSaveLoad:
    def test_round_trip_from_memory_build(self, workload, tmp_path):
        data, queries = workload
        original = HDIndex(params())
        original.build(data)
        save_index(original, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        for query in queries:
            ids_a, dists_a = original.query(query, 10)
            ids_b, dists_b = reloaded.query(query, 10)
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_allclose(dists_a, dists_b)
        reloaded.close()

    def test_round_trip_from_disk_build(self, workload, tmp_path):
        data, queries = workload
        directory = tmp_path / "hd"
        original = HDIndex(params(storage_dir=str(directory)))
        original.build(data)
        save_index(original, directory)   # metadata only; pages in place
        original.close()
        reloaded = load_index(directory)
        ids, dists = reloaded.query(queries[0], 10)
        assert len(ids) == 10
        assert np.all(np.diff(dists) >= 0)
        reloaded.close()

    def test_reloaded_index_accepts_updates(self, workload, tmp_path):
        data, queries = workload
        original = HDIndex(params())
        original.build(data)
        save_index(original, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        new_point = np.full(16, 55.0)
        new_id = reloaded.insert(new_point)
        ids, _ = reloaded.query(new_point, 1)
        assert ids[0] == new_id
        reloaded.close()

    def test_deleted_ids_survive_round_trip(self, workload, tmp_path):
        data, queries = workload
        original = HDIndex(params())
        original.build(data)
        ids, _ = original.query(data[7], 1)
        assert ids[0] == 7
        original.delete(7)
        save_index(original, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        ids, _ = reloaded.query(data[7], 1)
        assert ids[0] != 7
        reloaded.close()

    def test_meta_file_contents(self, workload, tmp_path):
        data, _ = workload
        index = HDIndex(params())
        index.build(data)
        save_index(index, tmp_path / "index")
        meta = json.loads((tmp_path / "index" / "meta.json").read_text())
        assert meta["format_version"] == 1
        assert meta["dim"] == 16
        assert meta["count"] == len(data)
        assert len(meta["trees"]) == 4
        assert meta["params"]["num_references"] == 5

    def test_load_missing_directory_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "nothing")

    def test_load_bad_version_rejected(self, workload, tmp_path):
        data, _ = workload
        index = HDIndex(params())
        index.build(data)
        save_index(index, tmp_path / "index")
        meta_path = tmp_path / "index" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "index")

    def test_save_unbuilt_index_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_index(HDIndex(params()), tmp_path / "index")

    def test_cache_override_on_load(self, workload, tmp_path):
        data, queries = workload
        index = HDIndex(params())
        index.build(data)
        save_index(index, tmp_path / "index")
        cached = load_index(tmp_path / "index", cache_pages=256)
        cached.query(queries[0], 5)
        cached.query(queries[0], 5)
        assert cached.io_snapshot()["cache_hits"] > 0
        cached.close()


class TestFamilySaveLoad:
    """Whole-family persistence: parallel and sharded snapshots reopen as
    the class that was saved (PR-2 tentpole)."""

    def test_parallel_round_trip_restores_class(self, workload, tmp_path):
        data, queries = workload
        original = HDIndex(params(), executor=ThreadedExecutor(3))
        original.build(data)
        save_index(original, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        # The snapshot's spec reconstructs the deployment: a thread-pool
        # executor of the saved width (no per-combination class needed).
        assert isinstance(reloaded, HDIndex)
        assert isinstance(reloaded.executor, ThreadedExecutor)
        assert reloaded.spec.execution.workers == 3
        for query in queries:
            ids_a, dists_a = original.query(query, 10)
            ids_b, dists_b = reloaded.query(query, 10)
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_array_equal(dists_a, dists_b)
        original.close()
        reloaded.close()

    def test_sharded_round_trip_matches_pre_save_exactly(self, workload,
                                                         tmp_path):
        data, queries = workload
        original = ShardRouter(params(), 3)
        original.build(data)
        save_index(original, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        assert isinstance(reloaded, ShardRouter)
        assert reloaded.num_shards == 3
        assert reloaded.count == original.count
        np.testing.assert_array_equal(reloaded.offsets, original.offsets)
        for query in queries:
            ids_a, dists_a = original.query(query, 10)
            ids_b, dists_b = reloaded.query(query, 10)
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_array_equal(dists_a, dists_b)
        batch_a = original.query_batch(queries, 10)
        batch_b = reloaded.query_batch(queries, 10)
        np.testing.assert_array_equal(batch_a[0], batch_b[0])
        np.testing.assert_array_equal(batch_a[1], batch_b[1])
        original.close()
        reloaded.close()

    def test_sharded_snapshot_layout(self, workload, tmp_path):
        data, _ = workload
        index = ShardRouter(params(), 2)
        index.build(data)
        save_index(index, tmp_path / "index")
        manifest = json.loads(
            (tmp_path / "index" / "manifest.json").read_text())
        assert manifest["kind"] == "sharded"
        assert manifest["num_shards"] == 2
        assert manifest["count"] == len(data)
        assert manifest["offsets"][0] == 0
        assert manifest["offsets"][-1] == len(data)
        for shard in range(2):
            shard_dir = tmp_path / "index" / f"shard_{shard}"
            assert (shard_dir / "meta.json").exists()
            assert (shard_dir / "descriptors.pages").exists()

    def test_sharded_inserts_and_deletes_survive(self, workload, tmp_path):
        data, _ = workload
        index = ShardRouter(params(), 2)
        index.build(data)
        point = np.full(16, 55.0)
        new_id = index.insert(point)
        index.delete(3)
        save_index(index, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        assert reloaded.count == len(data) + 1
        ids, _ = reloaded.query(point, 1)
        assert ids[0] == new_id
        ids, _ = reloaded.query(data[3], 1)
        assert ids[0] != 3
        # The reloaded index keeps handing out fresh, non-colliding ids.
        another = reloaded.insert(np.full(16, 45.0))
        assert another == len(data) + 1
        reloaded.delete(new_id)
        ids, _ = reloaded.query(point, 1)
        assert ids[0] != new_id
        index.close()
        reloaded.close()

    def test_sharded_cache_pages_plumbed_to_shards(self, workload, tmp_path):
        data, queries = workload
        index = ShardRouter(params(), 2)
        index.build(data)
        save_index(index, tmp_path / "index")
        reloaded = load_index(tmp_path / "index", cache_pages=128)
        reloaded.query(queries[0], 5)
        reloaded.query(queries[0], 5)
        for shard in reloaded.shards:
            assert shard.params.cache_pages == 128
        assert any(shard.io_snapshot()["cache_hits"] > 0
                   for shard in reloaded.shards)
        index.close()
        reloaded.close()

    def test_save_unbuilt_sharded_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_index(ShardRouter(params()), tmp_path / "index")

    def test_save_foreign_index_rejected(self, tmp_path):
        from repro.baselines import LinearScan
        with pytest.raises(PersistenceError):
            save_index(LinearScan(), tmp_path / "index")

    def test_load_empty_directory_rejected(self, tmp_path):
        (tmp_path / "index").mkdir()
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "index")

    def test_load_bad_manifest_kind_rejected(self, workload, tmp_path):
        data, _ = workload
        index = ShardRouter(params(), 2)
        index.build(data)
        save_index(index, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["kind"] = "mystery"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "index")
        index.close()


class TestMutateResaveRoundTrip:
    """Regression (PR 2): save -> load -> insert()/delete() -> save on the
    same directory must keep the snapshot consistent across cycles."""

    def test_two_mutation_cycles_preserve_state(self, workload, tmp_path):
        data, queries = workload
        directory = tmp_path / "index"
        index = HDIndex(params())
        index.build(data)
        save_index(index, directory)
        inserted = []
        rng = np.random.default_rng(5)
        for cycle in range(2):
            reloaded = load_index(directory)
            # Enough inserts to allocate fresh heap pages and split leaves.
            for _ in range(40):
                inserted.append(reloaded.insert(
                    rng.uniform(0.0, 100.0, size=16)))
            reloaded.delete(cycle)
            save_index(reloaded, directory)
            ids_before, dists_before = reloaded.query(queries[0], 10)
            reloaded.close()
            final = load_index(directory)
            assert final.count == len(data) + len(inserted)
            assert len(final.heap) == len(data) + len(inserted)
            assert final._deleted == set(range(cycle + 1))
            for tree in final.trees:
                assert len(tree) == len(data) + len(inserted)
            ids_after, dists_after = final.query(queries[0], 10)
            np.testing.assert_array_equal(ids_before, ids_after)
            np.testing.assert_array_equal(dists_before, dists_after)
            final.close()

    def test_resave_original_after_mutation(self, workload, tmp_path):
        """Saving the still-open memory-built index again (after updates)
        refreshes the page files rather than leaving a stale copy."""
        data, _ = workload
        directory = tmp_path / "index"
        index = HDIndex(params())
        index.build(data)
        save_index(index, directory)
        point = np.full(16, 42.0)
        new_id = index.insert(point)
        index.delete(0)
        save_index(index, directory)
        reloaded = load_index(directory)
        assert len(reloaded.heap) == len(data) + 1
        assert reloaded._deleted == {0}
        ids, _ = reloaded.query(point, 1)
        assert ids[0] == new_id
        reloaded.close()

    def test_query_parity_after_mutated_reload(self, workload, tmp_path):
        data, queries = workload
        directory = tmp_path / "index"
        index = HDIndex(params())
        index.build(data)
        save_index(index, directory)
        mutated = load_index(directory)
        for offset in range(8):
            mutated.insert(np.clip(queries[0] + offset, 0, 100))
        mutated.delete(11)
        save_index(mutated, directory)
        expected = [mutated.query(query, 10) for query in queries]
        mutated.close()
        reloaded = load_index(directory)
        for query, (ids, dists) in zip(queries, expected):
            got_ids, got_dists = reloaded.query(query, 10)
            np.testing.assert_array_equal(got_ids, ids)
            np.testing.assert_array_equal(got_dists, dists)
        reloaded.close()


class TestMaterialiseStore:
    """Regression (PR 2): contiguity is enforced with a real exception, not
    a bare ``assert`` that ``python -O`` strips to a no-op."""

    class _GappyStore:
        """A store whose page ids are not contiguous (simulated corruption)."""

        page_size = 4096

        def iter_page_ids(self):
            return iter([0, 2])

        def read(self, page_id):
            return bytes(self.page_size)

    def test_non_contiguous_store_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="not contiguous"):
            _materialise_store(self._GappyStore(), str(tmp_path),
                               "descriptors", 4096)

    def test_empty_store_materialises_empty_file(self, tmp_path):
        store = InMemoryPageStore(page_size=4096)
        _materialise_store(store, str(tmp_path), "descriptors", 4096)
        assert (tmp_path / "descriptors.pages").stat().st_size == 0

    def test_contiguous_store_copies_all_pages(self, tmp_path):
        store = InMemoryPageStore(page_size=512)
        for value in (b"a", b"b", b"c"):
            page_id = store.allocate()
            store.write(page_id, value * 512)
        _materialise_store(store, str(tmp_path), "descriptors", 512)
        raw = (tmp_path / "descriptors.pages").read_bytes()
        assert raw == b"a" * 512 + b"b" * 512 + b"c" * 512

    def test_file_backed_elsewhere_rejected(self, workload, tmp_path):
        data, _ = workload
        index = HDIndex(params(storage_dir=str(tmp_path / "origin")))
        index.build(data)
        with pytest.raises(PersistenceError, match="file-backed"):
            save_index(index, tmp_path / "elsewhere")
        index.close()
