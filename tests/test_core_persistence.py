"""Tests for HD-Index save/load persistence."""

import json

import numpy as np
import pytest

from repro.core import (
    HDIndex,
    HDIndexParams,
    PersistenceError,
    load_index,
    save_index,
)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(99)
    centers = rng.uniform(0.0, 100.0, size=(5, 16))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(60, 16)) for center in centers])
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.5, size=(6, 16))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


def params(**overrides):
    defaults = dict(num_trees=4, num_references=5, alpha=128, gamma=32,
                    domain=(0.0, 100.0), seed=0)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


class TestSaveLoad:
    def test_round_trip_from_memory_build(self, workload, tmp_path):
        data, queries = workload
        original = HDIndex(params())
        original.build(data)
        save_index(original, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        for query in queries:
            ids_a, dists_a = original.query(query, 10)
            ids_b, dists_b = reloaded.query(query, 10)
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_allclose(dists_a, dists_b)
        reloaded.close()

    def test_round_trip_from_disk_build(self, workload, tmp_path):
        data, queries = workload
        directory = tmp_path / "hd"
        original = HDIndex(params(storage_dir=str(directory)))
        original.build(data)
        save_index(original, directory)   # metadata only; pages in place
        original.close()
        reloaded = load_index(directory)
        ids, dists = reloaded.query(queries[0], 10)
        assert len(ids) == 10
        assert np.all(np.diff(dists) >= 0)
        reloaded.close()

    def test_reloaded_index_accepts_updates(self, workload, tmp_path):
        data, queries = workload
        original = HDIndex(params())
        original.build(data)
        save_index(original, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        new_point = np.full(16, 55.0)
        new_id = reloaded.insert(new_point)
        ids, _ = reloaded.query(new_point, 1)
        assert ids[0] == new_id
        reloaded.close()

    def test_deleted_ids_survive_round_trip(self, workload, tmp_path):
        data, queries = workload
        original = HDIndex(params())
        original.build(data)
        ids, _ = original.query(data[7], 1)
        assert ids[0] == 7
        original.delete(7)
        save_index(original, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        ids, _ = reloaded.query(data[7], 1)
        assert ids[0] != 7
        reloaded.close()

    def test_meta_file_contents(self, workload, tmp_path):
        data, _ = workload
        index = HDIndex(params())
        index.build(data)
        save_index(index, tmp_path / "index")
        meta = json.loads((tmp_path / "index" / "meta.json").read_text())
        assert meta["format_version"] == 1
        assert meta["dim"] == 16
        assert meta["count"] == len(data)
        assert len(meta["trees"]) == 4
        assert meta["params"]["num_references"] == 5

    def test_load_missing_directory_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "nothing")

    def test_load_bad_version_rejected(self, workload, tmp_path):
        data, _ = workload
        index = HDIndex(params())
        index.build(data)
        save_index(index, tmp_path / "index")
        meta_path = tmp_path / "index" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(PersistenceError):
            load_index(tmp_path / "index")

    def test_save_unbuilt_index_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_index(HDIndex(params()), tmp_path / "index")

    def test_cache_override_on_load(self, workload, tmp_path):
        data, queries = workload
        index = HDIndex(params())
        index.build(data)
        save_index(index, tmp_path / "index")
        cached = load_index(tmp_path / "index", cache_pages=256)
        cached.query(queries[0], 5)
        cached.query(queries[0], 5)
        assert cached.io_snapshot()["cache_hits"] > 0
        cached.close()
