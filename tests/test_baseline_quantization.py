"""Tests for the PQ and OPQ baselines."""

import numpy as np
import pytest

from repro.baselines import OPQIndex, PQIndex
from repro.eval import exact_knn, recall_at_k


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(31)
    centers = rng.uniform(0.0, 20.0, size=(8, 16))
    data = np.vstack([
        center + rng.normal(0.0, 0.5, size=(40, 16)) for center in centers])
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.1, size=(6, 16))
    return data, queries


class TestPQ:
    def test_adc_recall_on_clustered_data(self, workload):
        data, queries = workload
        index = PQIndex(num_subspaces=4, num_centroids=32, seed=0)
        index.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        recalls = [recall_at_k(true_ids[row], index.query(q, 10)[0], 10)
                   for row, q in enumerate(queries)]
        assert np.mean(recalls) > 0.4

    def test_codes_shape_and_dtype(self, workload):
        data, _ = workload
        index = PQIndex(num_subspaces=4, num_centroids=32, seed=1)
        index.build(data)
        assert index.codes.shape == (len(data), 4)
        assert index.codes.dtype == np.uint8

    def test_wide_codebooks_use_uint16(self, workload):
        data, _ = workload
        index = PQIndex(num_subspaces=4, num_centroids=300, seed=2)
        index.build(data)
        assert index.codes.dtype == np.uint16

    def test_encode_decode_reconstruction(self, workload):
        data, _ = workload
        index = PQIndex(num_subspaces=4, num_centroids=64, seed=3)
        index.build(data)
        reconstructed = index.decode(index.encode(data[:10]))
        error = np.mean((reconstructed - data[:10]) ** 2)
        assert error < np.mean(data[:10] ** 2)

    def test_more_centroids_reduce_error(self, workload):
        data, _ = workload
        coarse = PQIndex(num_subspaces=4, num_centroids=4, seed=4)
        fine = PQIndex(num_subspaces=4, num_centroids=64, seed=4)
        coarse.build(data)
        fine.build(data)
        assert fine.reconstruction_error(data) < \
            coarse.reconstruction_error(data)

    def test_rerank_improves_quality(self, workload):
        data, queries = workload
        plain = PQIndex(num_subspaces=8, num_centroids=8, seed=5)
        reranked = PQIndex(num_subspaces=8, num_centroids=8,
                           rerank_factor=5, seed=5)
        plain.build(data)
        reranked.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        plain_recall = np.mean([
            recall_at_k(true_ids[row], plain.query(q, 10)[0], 10)
            for row, q in enumerate(queries)])
        rerank_recall = np.mean([
            recall_at_k(true_ids[row], reranked.query(q, 10)[0], 10)
            for row, q in enumerate(queries)])
        assert rerank_recall >= plain_recall

    def test_rerank_counts_page_reads(self, workload):
        data, queries = workload
        index = PQIndex(num_subspaces=4, num_centroids=16,
                        rerank_factor=3, seed=6)
        index.build(data)
        index.query(queries[0], 5)
        assert index.last_query_stats().page_reads > 0

    def test_pure_adc_touches_no_pages(self, workload):
        data, queries = workload
        index = PQIndex(num_subspaces=4, num_centroids=16, seed=7)
        index.build(data)
        index.query(queries[0], 5)
        assert index.last_query_stats().page_reads == 0

    def test_index_smaller_than_data(self, workload):
        data, _ = workload
        index = PQIndex(num_subspaces=4, num_centroids=16, seed=8)
        index.build(data)
        assert index.index_size_bytes() < data.nbytes

    def test_invalid_parameters(self, workload):
        data, _ = workload
        with pytest.raises(ValueError):
            PQIndex(num_subspaces=0)
        index = PQIndex(num_subspaces=32)
        with pytest.raises(ValueError):
            index.build(data)  # 32 subspaces > 16 dims

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            PQIndex().query(np.zeros(4), 1)


class TestOPQ:
    def test_rotation_is_orthonormal(self, workload):
        data, _ = workload
        index = OPQIndex(num_subspaces=4, num_centroids=16,
                         opq_iterations=3, seed=0)
        index.build(data)
        should_be_identity = index.rotation @ index.rotation.T
        np.testing.assert_allclose(should_be_identity, np.eye(16), atol=1e-9)

    def test_opq_no_worse_than_pq_on_correlated_data(self):
        """OPQ's rotation decorrelates dimensions; on deliberately
        correlated data it must match or beat PQ's quantisation error."""
        rng = np.random.default_rng(9)
        latent = rng.normal(size=(300, 4))
        mixing = rng.normal(size=(4, 16))
        data = latent @ mixing + rng.normal(0.0, 0.05, size=(300, 16))
        pq = PQIndex(num_subspaces=4, num_centroids=16, seed=10)
        opq = OPQIndex(num_subspaces=4, num_centroids=16,
                       opq_iterations=6, seed=10)
        pq.build(data)
        opq.build(data)
        assert opq.reconstruction_error(data) <= \
            pq.reconstruction_error(data) * 1.05

    def test_query_returns_k(self, workload):
        data, queries = workload
        index = OPQIndex(num_subspaces=4, num_centroids=16,
                         opq_iterations=2, seed=11)
        index.build(data)
        ids, dists = index.query(queries[0], 7)
        assert len(ids) == 7
        assert np.all(np.diff(dists) >= 0)

    def test_memory_includes_rotation(self, workload):
        data, _ = workload
        index = OPQIndex(num_subspaces=4, num_centroids=16,
                         opq_iterations=2, seed=12)
        index.build(data)
        assert index.memory_bytes() >= index.rotation.nbytes

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            OPQIndex(opq_iterations=0)
