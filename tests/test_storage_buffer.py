"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage import BufferPool, InMemoryPageStore


def make_pool(capacity, pages=6, page_size=32):
    store = InMemoryPageStore(page_size=page_size)
    pool = BufferPool(store, capacity=capacity)
    for index in range(pages):
        page_id = pool.allocate()
        pool.write(page_id, bytes([index]) * page_size)
    return store, pool


class TestDisabledCache:
    """capacity=0 reproduces the paper's caching-off methodology."""

    def test_every_read_hits_the_store(self):
        store, pool = make_pool(capacity=0)
        store.stats.reset()
        for _ in range(3):
            pool.read(0)
        assert store.stats.page_reads == 3
        assert store.stats.cache_hits == 0

    def test_no_memory_held(self):
        _, pool = make_pool(capacity=0)
        pool.read(0)
        assert pool.cached_pages() == 0
        assert pool.memory_bytes() == 0


class TestLRU:
    def test_repeated_read_served_from_cache(self):
        store, pool = make_pool(capacity=4)
        store.stats.reset()
        pool.read(0)
        pool.read(0)
        pool.read(0)
        assert store.stats.page_reads == 1
        assert store.stats.cache_hits == 2

    def test_eviction_order_is_least_recently_used(self):
        store, pool = make_pool(capacity=2)
        pool.clear()
        store.stats.reset()
        pool.read(0)
        pool.read(1)
        pool.read(0)        # refresh page 0
        pool.read(2)        # evicts page 1
        store.stats.reset()
        pool.read(0)        # hit
        assert store.stats.cache_hits == 1
        pool.read(1)        # miss: was evicted
        assert store.stats.page_reads == 1

    def test_capacity_never_exceeded(self):
        _, pool = make_pool(capacity=3)
        for page_id in range(6):
            pool.read(page_id)
        assert pool.cached_pages() == 3
        assert pool.memory_bytes() == 3 * 32

    def test_write_through_updates_cache(self):
        store, pool = make_pool(capacity=4)
        pool.read(0)
        pool.write(0, b"updated")
        store.stats.reset()
        data = pool.read(0)
        assert data.startswith(b"updated")
        assert store.stats.page_reads == 0  # served from refreshed cache

    def test_write_always_reaches_store(self):
        store, pool = make_pool(capacity=4)
        writes_before = store.stats.page_writes
        pool.write(0, b"direct")
        assert store.stats.page_writes == writes_before + 1
        assert store.read(0).startswith(b"direct")

    def test_clear_drops_cache(self):
        store, pool = make_pool(capacity=4)
        pool.read(0)
        pool.clear()
        store.stats.reset()
        pool.read(0)
        assert store.stats.page_reads == 1

    def test_negative_capacity_rejected(self):
        store = InMemoryPageStore()
        with pytest.raises(ValueError):
            BufferPool(store, capacity=-1)

    def test_page_size_passthrough(self):
        store = InMemoryPageStore(page_size=128)
        pool = BufferPool(store)
        assert pool.page_size == 128


class TestHitRateAccounting:
    """The cache_hits / page_reads split the serving benchmarks lean on."""

    def test_hits_and_misses_sum_to_logical_reads(self):
        store, pool = make_pool(capacity=3, pages=6)
        pool.clear()
        store.stats.reset()
        pattern = [0, 1, 2, 0, 1, 2, 3, 3, 0, 5]
        for page_id in pattern:
            pool.read(page_id)
        stats = store.stats
        assert stats.page_reads + stats.cache_hits == len(pattern)
        # 0,1,2 miss; 0,1,2 hit; 3 misses; 3 hits; 0 was evicted by 3 so
        # misses; 5 misses.
        assert stats.cache_hits == 4
        assert stats.page_reads == 6

    def test_eviction_is_visible_in_hit_rate(self):
        store, pool = make_pool(capacity=2, pages=4)
        pool.clear()
        store.stats.reset()
        for _ in range(3):
            for page_id in range(4):  # working set (4) > capacity (2)
                pool.read(page_id)
        assert store.stats.cache_hits == 0  # LRU thrashes: no reuse wins
        assert store.stats.page_reads == 12
        assert pool.cached_pages() == 2

    def test_write_through_refresh_counts_no_read(self):
        store, pool = make_pool(capacity=2)
        pool.clear()
        store.stats.reset()
        pool.write(0, b"fresh")
        pool.read(0)
        assert store.stats.cache_hits == 1
        assert store.stats.page_reads == 0

    def test_snapshot_reports_hits(self):
        store, pool = make_pool(capacity=2)
        pool.clear()
        store.stats.reset()
        pool.read(0)
        pool.read(0)
        snap = store.stats.snapshot()
        assert snap["cache_hits"] == 1
        assert snap["page_reads"] == 1
