"""Tests for the micro-batched concurrent query service.

The contract under test: batching and caching change the *work layout*,
never the answers — N client threads through the service get byte-identical
results to a sequential loop over ``query`` — plus the service mechanics
(backpressure, draining, error isolation, statistics).
"""

import threading

import numpy as np
import pytest

from repro.core import (
    HDIndex,
    HDIndexParams,
    ShardRouter,
    ThreadedExecutor,
    save_index,
)
from repro.serve import (
    QueryService,
    ResultCache,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    make_key,
)

K = 10


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(77)
    centers = rng.uniform(0.0, 100.0, size=(6, 16))
    data = np.vstack([
        center + rng.normal(0.0, 3.0, size=(60, 16)) for center in centers])
    queries = data[rng.choice(len(data), 24, replace=False)] \
        + rng.normal(0.0, 0.5, size=(24, 16))
    return np.clip(data, 0, 100), np.clip(queries, 0, 100)


def params(**overrides):
    defaults = dict(num_trees=4, num_references=5, alpha=96, gamma=32,
                    domain=(0.0, 100.0), seed=0)
    defaults.update(overrides)
    return HDIndexParams(**defaults)


@pytest.fixture(scope="module")
def built_index(workload):
    data, _ = workload
    index = HDIndex(params())
    index.build(data)
    yield index
    index.close()


@pytest.fixture(scope="module")
def expected(workload, built_index):
    _, queries = workload
    return [built_index.query(query, K) for query in queries]


def run_clients(service, queries, num_threads, rounds=1, k=K):
    """Drive the service from ``num_threads`` threads; returns results
    indexed like ``queries`` (repeated ``rounds`` times)."""
    total = len(queries) * rounds
    results = [None] * total
    failures = []

    def client(thread_index):
        try:
            for i in range(thread_index, total, num_threads):
                results[i] = service.query(queries[i % len(queries)], k)
        except Exception as error:  # pragma: no cover - failure reporting
            failures.append(error)

    threads = [threading.Thread(target=client, args=(t,))
               for t in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures
    return results


class TestConcurrentParity:
    @pytest.mark.parametrize("num_threads", [1, 4, 8])
    def test_threads_match_sequential_loop(self, workload, built_index,
                                           expected, num_threads):
        _, queries = workload
        with QueryService(built_index, max_batch=8,
                          max_wait_ms=2.0) as service:
            results = run_clients(service, queries, num_threads)
        for row, (ids, dists) in enumerate(expected):
            np.testing.assert_array_equal(results[row][0], ids)
            np.testing.assert_array_equal(results[row][1], dists)

    def test_cold_and_warm_cache_both_match(self, workload, built_index,
                                            expected):
        _, queries = workload
        with QueryService(built_index, max_batch=8, max_wait_ms=1.0,
                          cache_size=256) as service:
            cold = run_clients(service, queries, 4)
            warm = run_clients(service, queries, 4)
            stats = service.stats()
        assert stats.cache_hits >= len(queries)
        for row, (ids, dists) in enumerate(expected):
            for results in (cold, warm):
                np.testing.assert_array_equal(results[row][0], ids)
                np.testing.assert_array_equal(results[row][1], dists)

    @pytest.mark.parametrize("make_index", [
        lambda p: HDIndex(p, executor=ThreadedExecutor(2)),
        lambda p: ShardRouter(p, 2),
    ], ids=["parallel", "sharded"])
    def test_family_members_served_identically(self, workload, make_index):
        data, queries = workload
        index = make_index(params())
        index.build(data)
        expected = [index.query(query, K) for query in queries]
        with QueryService(index, max_batch=8, max_wait_ms=2.0) as service:
            results = run_clients(service, queries, 4)
        for row, (ids, dists) in enumerate(expected):
            np.testing.assert_array_equal(results[row][0], ids)
            np.testing.assert_array_equal(results[row][1], dists)
        index.close()

    def test_mixed_k_and_overrides_batched_separately(self, workload,
                                                      built_index):
        _, queries = workload
        combos = [dict(k=3), dict(k=7), dict(k=5, alpha=48, gamma=16)]
        expected = []
        for row, query in enumerate(queries):
            combo = dict(combos[row % len(combos)])
            k = combo.pop("k")
            expected.append(built_index.query(query, k, **combo))
        with QueryService(built_index, max_batch=16,
                          max_wait_ms=2.0) as service:
            futures = []
            for row, query in enumerate(queries):
                combo = dict(combos[row % len(combos)])
                k = combo.pop("k")
                futures.append(service.submit(query, k, **combo))
            results = [future.result() for future in futures]
        for (ids, dists), (got_ids, got_dists) in zip(expected, results):
            np.testing.assert_array_equal(got_ids, ids)
            np.testing.assert_array_equal(got_dists, dists)


class TestServiceMechanics:
    def test_micro_batches_actually_form(self, workload, built_index):
        _, queries = workload
        service = QueryService(built_index, max_batch=64, max_wait_ms=50.0)
        futures = [service.submit(query, K) for query in queries]
        service.start()
        for future in futures:
            future.result()
        stats = service.stats()
        service.stop()
        assert stats.batches < len(queries)
        assert stats.max_batch_size > 1
        assert stats.queries == len(queries)

    def test_backpressure_bounds_queue_depth(self, workload, built_index):
        _, queries = workload
        service = QueryService(built_index, max_pending=4)
        for row in range(4):
            service.submit(queries[row], K)
        assert service.pending() == 4
        with pytest.raises(ServiceOverloaded):
            service.submit(queries[4], K, timeout=0.05)
        assert service.stats().overloads == 1
        # Once the worker drains the queue, submission unblocks.
        service.start()
        future = service.submit(queries[4], K, timeout=5.0)
        ids, _ = future.result(timeout=5.0)
        np.testing.assert_array_equal(
            ids, built_index.query(queries[4], K)[0])
        service.stop()

    def test_stop_drains_pending_requests(self, workload, built_index):
        _, queries = workload
        service = QueryService(built_index, max_wait_ms=50.0)
        futures = [service.submit(query, K) for query in queries[:6]]
        service.start()
        service.stop()  # drain=True: all queued work is answered
        for future, query in zip(futures, queries):
            ids, _ = future.result(timeout=0)
            np.testing.assert_array_equal(
                ids, built_index.query(query, K)[0])

    def test_stop_without_drain_fails_queued_futures(self, workload,
                                                     built_index):
        _, queries = workload
        service = QueryService(built_index)
        futures = [service.submit(query, K) for query in queries[:3]]
        service.stop(drain=False)
        for future in futures:
            with pytest.raises(ServiceClosed):
                future.result(timeout=0)

    def test_submit_after_stop_rejected(self, workload, built_index):
        _, queries = workload
        service = QueryService(built_index)
        service.stop()
        with pytest.raises(ServiceClosed):
            service.submit(queries[0], K)
        with pytest.raises(ServiceClosed):
            service.start()

    def test_stop_idempotent_and_context_manager(self, workload,
                                                 built_index):
        _, queries = workload
        with QueryService(built_index) as service:
            service.query(queries[0], K)
        service.stop()
        service.stop(drain=False)

    def test_bad_query_does_not_poison_batch(self, workload, built_index):
        _, queries = workload
        service = QueryService(built_index, max_wait_ms=50.0)
        good = [service.submit(query, K) for query in queries[:3]]
        bad = service.submit(np.zeros(7), K)  # wrong dimensionality
        more = [service.submit(query, K) for query in queries[3:6]]
        service.start()
        with pytest.raises(ValueError):
            bad.result(timeout=5.0)
        for future, query in zip(good + more,
                                 list(queries[:3]) + list(queries[3:6])):
            ids, _ = future.result(timeout=5.0)
            np.testing.assert_array_equal(
                ids, built_index.query(query, K)[0])
        service.stop()

    def test_unhashable_override_rejected_at_submit(self, workload,
                                                    built_index):
        """Regression: an unhashable override value must fail the caller,
        not reach the dispatcher's group map and kill the worker (which
        would hang every other client forever)."""
        _, queries = workload
        with QueryService(built_index, max_wait_ms=1.0) as service:
            with pytest.raises(TypeError):
                service.submit(queries[0], K, alpha=[32])
            # The service is still alive and serving.
            ids, _ = service.query(queries[1], K, timeout=5.0)
            np.testing.assert_array_equal(
                ids, built_index.query(queries[1], K)[0])

    def test_query_timeout_covers_backpressure(self, workload, built_index):
        """Regression: query()'s timeout must bound the admission wait
        too, not only the result wait — a full queue used to block a
        timeout-bearing caller forever."""
        _, queries = workload
        service = QueryService(built_index, max_pending=1)
        service.submit(queries[0], K)  # fills the queue; worker not started
        with pytest.raises(ServiceOverloaded):
            service.query(queries[1], K, timeout=0.05)
        service.stop(drain=False)

    def test_invalid_arguments_rejected(self, workload, built_index):
        _, queries = workload
        service = QueryService(built_index)
        with pytest.raises(ValueError):
            service.submit(queries[0], 0)
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_wait_ms=-1)
        with pytest.raises(ValueError):
            ServiceConfig(max_pending=0)
        with pytest.raises(ValueError):
            ServiceConfig(cache_size=-1)
        service.stop()

    def test_caller_mutation_cannot_corrupt_queued_query(self, workload,
                                                         built_index):
        """submit() must snapshot the query vector: callers reuse buffers."""
        _, queries = workload
        buffer = np.array(queries[0])
        service = QueryService(built_index, max_wait_ms=50.0)
        future = service.submit(buffer, K)
        buffer[:] = 0.0  # mutate after submit, before dispatch
        service.start()
        ids, _ = future.result(timeout=5.0)
        np.testing.assert_array_equal(
            ids, built_index.query(queries[0], K)[0])
        service.stop()

    def test_from_snapshot_serves_sharded_directory(self, workload,
                                                    tmp_path):
        data, queries = workload
        index = ShardRouter(params(), 2)
        index.build(data)
        expected = [index.query(query, K) for query in queries[:6]]
        save_index(index, tmp_path / "snap")
        index.close()
        service = QueryService.from_snapshot(tmp_path / "snap",
                                             max_batch=8, max_wait_ms=1.0)
        assert isinstance(service.index, ShardRouter)
        with service:
            results = run_clients(service, queries[:6], 3)
        for (ids, dists), (got_ids, got_dists) in zip(expected, results):
            np.testing.assert_array_equal(got_ids, ids)
            np.testing.assert_array_equal(got_dists, dists)
        # from_snapshot hands ownership to the service: stop() (via the
        # context manager) must have closed the loaded page stores.
        from repro.storage.pages import StorageError
        with pytest.raises(StorageError):
            service.index.query(queries[0], K)


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        keys = [make_key(np.full(4, float(v)), 5, {}) for v in range(3)]
        for v, key in enumerate(keys):
            cache.put(key, np.array([v]), np.array([float(v)]))
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[2])[0][0] == 2
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        key = make_key(np.zeros(4), 5, {})
        cache.put(key, np.array([1]), np.array([1.0]))
        assert cache.get(key) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_entries_are_immutable(self):
        cache = ResultCache(capacity=4)
        key = make_key(np.zeros(4), 5, {})
        cache.put(key, np.array([1, 2]), np.array([1.0, 2.0]))
        ids, dists = cache.get(key)
        with pytest.raises(ValueError):
            ids[0] = 99
        with pytest.raises(ValueError):
            dists[0] = 99.0

    def test_key_distinguishes_k_and_overrides(self):
        point = np.zeros(4)
        base = make_key(point, 5, {})
        assert make_key(point, 10, {}) != base
        assert make_key(point, 5, {"alpha": 32}) != base
        # None-valued overrides mean "default" and share the base entry.
        assert make_key(point, 5, {"alpha": None}) == base

    def test_invalidate_after_index_update(self, workload):
        data, queries = workload
        index = HDIndex(params())
        index.build(data)
        with QueryService(index, cache_size=64,
                          max_wait_ms=1.0) as service:
            stale_ids, _ = service.query(queries[0], K)
            victim = int(stale_ids[0])
            index.delete(victim)
            service.invalidate_cache()
            fresh_ids, _ = service.query(queries[0], K)
            assert victim not in fresh_ids
        index.close()


class TestEpochInvalidation:
    """Live mutations must invalidate cached results automatically — the
    engine's ``update_epoch`` drives the service cache, no manual
    ``invalidate_cache`` call required."""

    def test_delete_invalidates_cache_without_manual_call(self, workload):
        data, queries = workload
        index = HDIndex(params())
        index.build(data)
        with QueryService(index, cache_size=64,
                          max_wait_ms=1.0) as service:
            stale_ids, _ = service.query(queries[0], K)
            victim = int(stale_ids[0])
            index.delete(victim)  # note: no service.invalidate_cache()
            fresh_ids, _ = service.query(queries[0], K)
            assert victim not in fresh_ids
        index.close()

    def test_insert_invalidates_cache_without_manual_call(self, workload):
        data, queries = workload
        index = HDIndex(params())
        index.build(data)
        probe = np.clip(queries[0] + 0.25, 0, 100)
        with QueryService(index, cache_size=64,
                          max_wait_ms=1.0) as service:
            service.query(probe, K)
            service.query(probe, K)
            assert service.stats().cache_hits >= 1  # cache is live
            new_id = index.insert(probe)  # exact duplicate of the probe
            fresh_ids, fresh_dists = service.query(probe, K)
            assert new_id in fresh_ids  # stale entry did not survive
            assert fresh_dists[list(fresh_ids).index(new_id)] < 1e-3
        index.close()

    def test_sharded_mutations_bump_epoch_too(self, workload):
        data, queries = workload
        index = ShardRouter(params(), 2)
        index.build(data)
        before = index.update_epoch
        new_id = index.insert(np.clip(queries[0], 0, 100))
        index.delete(new_id)
        assert index.update_epoch == before + 2
        index.close()

    def test_unmutated_index_keeps_cache_hot(self, workload):
        data, queries = workload
        index = HDIndex(params())
        index.build(data)
        with QueryService(index, cache_size=64,
                          max_wait_ms=1.0) as service:
            for _ in range(3):
                service.query(queries[0], K)
            assert service.stats().cache_hits == 2
        index.close()


class TestDeadlines:
    """End-to-end deadlines at the service layer: expiry while queued is
    a typed failure that never wastes batch capacity, and the admission
    wait distinguishes deadline expiry from overload."""

    def test_expired_in_queue_fails_typed(self, workload, built_index):
        from repro.serve import DeadlineExceeded
        _, queries = workload
        import time as _time
        service = QueryService(built_index, max_wait_ms=1.0)
        doomed = service.submit(queries[0], K, deadline=0.02)
        live = service.submit(queries[1], K)
        _time.sleep(0.08)  # deadline lapses while the worker is off
        service.start()
        with pytest.raises(DeadlineExceeded):
            doomed.result(timeout=5.0)
        ids, _ = live.result(timeout=5.0)  # batch-mate is unaffected
        np.testing.assert_array_equal(
            ids, built_index.query(queries[1], K)[0])
        assert service.stats().deadline_expired == 1
        service.stop()

    def test_deadline_bounds_admission_wait(self, workload, built_index):
        from repro.serve import DeadlineExceeded
        _, queries = workload
        service = QueryService(built_index, max_pending=1)
        service.submit(queries[0], K)  # fills the queue; worker off
        with pytest.raises(DeadlineExceeded):
            service.submit(queries[1], K, deadline=0.05)
        assert service.stats().deadline_expired == 1
        service.stop(drain=False)

    def test_timeout_zero_probes_without_blocking(self, workload,
                                                  built_index):
        """timeout=0 is the event-loop-safe admission probe: immediate
        ServiceOverloaded on a full queue, immediate admission otherwise
        (the gateway relies on both halves)."""
        import time as _time
        _, queries = workload
        service = QueryService(built_index, max_pending=1)
        started = _time.monotonic()
        service.submit(queries[0], K, timeout=0)  # space available
        with pytest.raises(ServiceOverloaded):
            service.submit(queries[1], K, timeout=0)  # full: no wait
        assert _time.monotonic() - started < 1.0
        service.stop(drain=False)

    def test_slot_freed_at_expiry_still_admits(self, workload,
                                               built_index):
        """Regression: a submitter whose admission timeout races the
        worker freeing a slot must be admitted, not failed — capacity is
        re-checked after every wake before any overload raise."""
        import threading as _threading
        _, queries = workload
        service = QueryService(built_index, max_pending=1,
                               max_wait_ms=1.0)
        service.submit(queries[0], K)  # fills the queue; worker off
        outcome = {}

        def late_submitter():
            try:
                outcome["future"] = service.submit(queries[1], K,
                                                   timeout=5.0)
            except Exception as error:  # pragma: no cover - reporting
                outcome["error"] = error

        thread = _threading.Thread(target=late_submitter)
        thread.start()
        service.start()  # frees the slot while the submitter waits
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert "error" not in outcome, outcome.get("error")
        ids, _ = outcome["future"].result(timeout=5.0)
        np.testing.assert_array_equal(
            ids, built_index.query(queries[1], K)[0])
        service.stop()

    def test_invalid_deadline_rejected(self, workload, built_index):
        _, queries = workload
        service = QueryService(built_index)
        with pytest.raises(ValueError):
            service.submit(queries[0], K, deadline=0)
        with pytest.raises(ValueError):
            service.submit(queries[0], K, deadline=-1.0)
        service.stop()
