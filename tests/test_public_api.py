"""Public-API surface snapshot: export hygiene for the top-level package.

``repro.__all__`` is the contract a release makes; adding or removing a
symbol must be a *decision*, not a side effect of an import shuffle.
This test pins the exact surface — update ``EXPECTED_ALL`` deliberately
(and the docs with it) when the API genuinely changes.
"""

from __future__ import annotations

import repro

#: The published top-level surface, alphabetical.  A failure here means a
#: symbol was added or removed without updating this snapshot.
EXPECTED_ALL = [
    "And",
    "C2LSH",
    "DATASET_CATALOG",
    "Dataset",
    "DatasetSpec",
    "E2LSH",
    "Eq",
    "Execution",
    "GroundTruth",
    "HDIndex",
    "HDIndexParams",
    "HNSW",
    "IDistance",
    "In",
    "IndexSpec",
    "KNNIndex",
    "LinearScan",
    "MetadataStore",
    "Multicurves",
    "Not",
    "OPQIndex",
    "Or",
    "PQIndex",
    "ParallelHDIndex",
    "Predicate",
    "ProcessPoolHDIndex",
    "QALSH",
    "QueryService",
    "QueryStats",
    "Range",
    "SRS",
    "ServiceConfig",
    "ServiceStats",
    "ShardRouter",
    "ShardedHDIndex",
    "Topology",
    "VAFile",
    "WorkerCrashed",
    "WorkerTimeout",
    "approximation_ratio",
    "average_precision",
    "build",
    "create_index",
    "evaluate_index",
    "evaluate_spec",
    "exact_knn",
    "format_table",
    "iter_hdf5_chunks",
    "load_index",
    "make_dataset",
    "mean_average_precision",
    "normalize_rows",
    "open",
    "open_index",
    "predicate_from_dict",
    "rdb_leaf_order",
    "recall_at_k",
    "recommended_params",
    "run_comparison",
    "save_index",
    "__version__",
]


def test_all_matches_snapshot():
    added = set(repro.__all__) - set(EXPECTED_ALL)
    removed = set(EXPECTED_ALL) - set(repro.__all__)
    assert not added and not removed, (
        f"public API drifted without a snapshot update: "
        f"added={sorted(added)}, removed={sorted(removed)}")


def test_all_is_sorted_and_unique():
    names = [n for n in repro.__all__ if n != "__version__"]
    assert names == sorted(names), "__all__ must stay alphabetical"
    assert len(set(repro.__all__)) == len(repro.__all__)


def test_every_export_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ exports missing {name!r}"


def test_star_import_matches_all():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - the test's point
    exported = {n for n in namespace if not n.startswith("_")
                or n == "__version__"}
    assert set(repro.__all__) - exported == set()


def test_spec_entry_points_are_the_documented_objects():
    """`repro.open` is the factory, not the builtin; `repro.build` builds."""
    from repro.core.factory import build, open_index
    assert repro.open is open_index
    assert repro.open_index is open_index
    assert repro.build is build
