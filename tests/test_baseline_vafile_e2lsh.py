"""Tests for the VA-file and E2LSH baselines."""

import numpy as np
import pytest

from repro.baselines import E2LSH, VAFile
from repro.eval import exact_knn, recall_at_k


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(71)
    centers = rng.uniform(0.0, 50.0, size=(5, 16))
    data = np.vstack([
        center + rng.normal(0.0, 1.5, size=(60, 16)) for center in centers])
    queries = data[rng.choice(len(data), 6, replace=False)] \
        + rng.normal(0.0, 0.3, size=(6, 16))
    return data, queries


class TestVAFile:
    def test_exactness(self, workload):
        """VA-file is an exact method: results must equal brute force."""
        data, queries = workload
        index = VAFile(bits=5)
        index.build(data)
        true_ids, true_dists = exact_knn(data, queries, k=10)
        for row, query in enumerate(queries):
            ids, dists = index.query(query, 10)
            assert set(ids.tolist()) == set(true_ids[row].tolist()), row
            np.testing.assert_allclose(np.sort(dists),
                                       np.sort(true_dists[row]), atol=1e-3)

    def test_prunes_most_fetches(self, workload):
        """Phase 2 should fetch far fewer vectors than a full scan."""
        data, queries = workload
        index = VAFile(bits=6)
        index.build(data)
        index.query(queries[0], 5)
        stats = index.last_query_stats()
        assert stats.candidates < len(data) // 2
        assert stats.extra["phase1_survivors"] <= len(data)

    def test_more_bits_prune_harder(self, workload):
        data, queries = workload
        coarse = VAFile(bits=2)
        fine = VAFile(bits=6)
        coarse.build(data)
        fine.build(data)
        total_coarse = total_fine = 0
        for query in queries:
            coarse.query(query, 5)
            total_coarse += coarse.last_query_stats().candidates
            fine.query(query, 5)
            total_fine += fine.last_query_stats().candidates
        assert total_fine < total_coarse

    def test_approximation_file_smaller_than_data(self, workload):
        data, _ = workload
        index = VAFile(bits=4)
        index.build(data)
        assert index.index_size_bytes() < data.astype(np.float32).nbytes

    def test_scan_reads_are_sequential(self, workload):
        data, queries = workload
        index = VAFile(bits=4)
        index.build(data)
        index.query(queries[0], 5)
        stats = index.last_query_stats()
        assert stats.sequential_reads > 0       # the approximation scan
        assert stats.random_reads == stats.candidates \
            or stats.random_reads > 0           # the candidate fetches

    def test_query_outside_data_range(self, workload):
        data, _ = workload
        index = VAFile(bits=4)
        index.build(data)
        far = np.full(16, 1e4)
        ids, dists = index.query(far, 3)
        true_ids, _ = exact_knn(data, far, k=3)
        assert set(ids.tolist()) == set(true_ids[0].tolist())

    def test_edge_cell_upper_bounds_cover_data_extent(self):
        """Regression (PR 2): the edge cells' upper bounds used the cell's
        inner edge instead of the true data min/max, under-estimating the
        phase-1 pruning threshold and dropping true neighbours at coarse
        quantisation (hypothesis-found: seed 2475, bits=2)."""
        rng = np.random.default_rng(2475)
        centers = rng.uniform(0.0, 50.0, size=(4, 6))
        assignment = rng.integers(0, 4, size=90)
        data = np.clip(centers[assignment]
                       + rng.normal(0.0, 1.5, size=(90, 6)), 0.0, 50.0)
        query = np.random.default_rng(2475 + 3).uniform(0.0, 50.0, size=6)
        for bits in (1, 2, 3):
            index = VAFile(bits=bits, storage_dtype="float64")
            index.build(data)
            ids, _ = index.query(query, 7)
            true_ids, _ = exact_knn(data, query, k=7)
            assert set(ids.tolist()) == set(true_ids[0].tolist()), bits

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            VAFile(bits=0)
        with pytest.raises(ValueError):
            VAFile(bits=9)

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            VAFile().query(np.zeros(4), 1)


class TestE2LSH:
    def test_reasonable_recall_on_clustered_data(self, workload):
        data, queries = workload
        index = E2LSH(num_tables=12, hashes_per_table=4, seed=0)
        index.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        recalls = [recall_at_k(true_ids[row], index.query(q, 10)[0], 10)
                   for row, q in enumerate(queries)]
        assert np.mean(recalls) > 0.4

    def test_more_tables_improve_recall(self, workload):
        data, queries = workload
        few = E2LSH(num_tables=2, hashes_per_table=6, seed=1)
        many = E2LSH(num_tables=16, hashes_per_table=6, seed=1)
        few.build(data)
        many.build(data)
        true_ids, _ = exact_knn(data, queries, k=10)
        recall_few = np.mean([
            recall_at_k(true_ids[row], few.query(q, 10)[0], 10)
            for row, q in enumerate(queries)])
        recall_many = np.mean([
            recall_at_k(true_ids[row], many.query(q, 10)[0], 10)
            for row, q in enumerate(queries)])
        assert recall_many >= recall_few

    def test_index_space_linear_in_tables(self, workload):
        """The super-linear space cost the paper's Sec. 1 criticises."""
        data, _ = workload
        small = E2LSH(num_tables=4, seed=2)
        large = E2LSH(num_tables=16, seed=2)
        small.build(data)
        large.build(data)
        assert large.index_size_bytes() == 4 * small.index_size_bytes()

    def test_width_auto_estimation(self, workload):
        data, queries = workload
        index = E2LSH(seed=3)
        index.build(data)
        index.query(queries[0], 5)
        assert index.last_query_stats().extra["width"] > 0

    def test_explicit_width_respected(self, workload):
        data, queries = workload
        index = E2LSH(width=123.0, seed=4)
        index.build(data)
        index.query(queries[0], 5)
        assert index.last_query_stats().extra["width"] == 123.0

    def test_may_return_fewer_than_k(self, workload):
        """With a tiny width, buckets are singletons and misses happen —
        honest LSH behaviour the harness penalises in MAP."""
        data, queries = workload
        index = E2LSH(num_tables=1, hashes_per_table=16, width=1e-6, seed=5)
        index.build(data)
        ids, _ = index.query(queries[0] + 100.0, 10)
        assert len(ids) <= 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            E2LSH(num_tables=0)
        with pytest.raises(ValueError):
            E2LSH(hashes_per_table=0)

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            E2LSH().query(np.zeros(4), 1)
