"""Known-bad fork-boundary snippets: every FS rule must fire here.

The test harness declares this file under ``[forksafety]`` with
``worker_functions = ["_worker_task"]``, ``allowed_worker_globals =
["_STATE"]``, ``bootstrap_functions = ["_bootstrap"]``,
``required_bootstrap_calls = ["_demote_executors"]`` and
``unpicklable_factories = ["MmapPageStore"]``.
"""

_STATE = {"index": None}
_RESULTS = {}


def _worker_task(payload):
    _STATE["index"] = payload          # allowlisted bootstrap slot: ok
    _RESULTS["last"] = payload  # expect: FS201
    _RESULTS.update(done=True)  # expect: FS201
    return payload


def _bootstrap():  # expect: FS203
    index = _STATE["index"]
    return index


class Dispatcher:
    def __init__(self, pool, snapshot_path):
        self.pool = pool
        self.snapshot_path = snapshot_path

    def dispatch_lambda(self, pool):
        return pool.submit(lambda: 1)  # expect: FS202

    def dispatch_self(self, pool):
        return pool.submit(_worker_task, self)  # expect: FS202

    def dispatch_handle(self, pool):
        handle = open(self.snapshot_path, "rb")
        return pool.submit(_worker_task, handle)  # expect: FS202

    def dispatch_store(self, pool, executor_cls):
        store = MmapPageStore(self.snapshot_path)
        executor = executor_cls(
            initializer=_worker_task,
            initargs=(store,),  # expect: FS202
        )
        return executor


def MmapPageStore(path):
    """Stand-in factory so the fixture parses standalone."""
    return object()
