"""Known-bad API-surface snippets: every API rule must fire here.

The test harness declares this file under ``[api]``
``frozen_dataclass_files`` so API304 applies; API301-303 apply
everywhere.
"""

from dataclasses import dataclass


def swallow_everything(action):
    try:
        return action()
    except:  # expect: API301
        return None


def accumulate(item, bucket=[]):  # expect: API302
    bucket.append(item)
    return bucket


def tagged(item, tags={}):  # expect: API302
    tags[item] = True
    return tags


def keyed(item, seen=set()):  # expect: API302
    seen.add(item)
    return seen


@dataclass
class MutableSpec:  # expect: API304
    alpha: int = 0


@dataclass(frozen=False)
class ExplicitlyMutableSpec:  # expect: API304
    beta: int = 0


@dataclass(frozen=True)
class ProperSpec:
    gamma: int = 0


__all__ = [
    "MutableSpec",
    "ProperSpec",
    "accumulate",
    "accumulate",  # expect: API303
    "no_such_function",  # expect: API303
    "swallow_everything",
]
