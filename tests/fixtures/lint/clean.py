"""Array-native code the lint must stay quiet on, even declared hot.

Shapes that historically tripped naive "no loops" linters: loops over
fixed-small structures (curve groups, key words via a parameter),
vectorised numpy batch work, ``len()`` used outside loop headers.
"""

from dataclasses import dataclass

import numpy as np

__all__ = ["FrozenThing", "batch_distances", "group_rows", "pack_rows"]


@dataclass(frozen=True)
class FrozenThing:
    width: int = 8


def batch_distances(points, centers):
    deltas = points[:, None, :] - centers[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", deltas, deltas))


def pack_rows(rows, word_count):
    out = np.zeros((rows.shape[0], word_count), dtype=np.uint64)
    for word in range(word_count):
        out[:, word] = rows[:, word * 8:(word + 1) * 8].max(axis=1)
    return out


def group_rows(groups, table):
    pieces = []
    for name in sorted(groups):
        pieces.append(table[groups[name]])
    return np.concatenate(pieces, axis=0) if pieces else np.empty(0)


def sized_report(values):
    n = len(values)
    return {"count": n, "bytes": values.nbytes}
