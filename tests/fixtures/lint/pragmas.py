"""Pragma behaviour fixture.

* Line-level ``# lint: disable=CODE`` must suppress the matching
  finding (nothing from the suppressed lines may surface).
* A pragma naming a code no rule owns must warn (LNT001) instead of
  silently disabling nothing.
* A pragma inside a string literal is text, not a pragma.
"""


def swallow_quietly(action):
    try:
        return action()
    except:  # lint: disable=API301
        return None


def accumulate(item, bucket=[]):  # lint: disable=API302
    bucket.append(item)
    return bucket


def multi(item, bucket=[], tags={}):  # lint: disable=API302,API302
    return bucket, tags


def typo_pragma(values):
    return values  # lint: disable=HK999 expect: LNT001


PRAGMA_TEXT = "# lint: disable=API301"
