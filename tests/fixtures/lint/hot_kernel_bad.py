"""Known-bad hot-kernel snippets: every HK rule must fire here.

The test harness declares this whole file hot (see
tests/test_devtools_lint.py) and asserts the exact codes via the
trailing ``# expect: CODE`` markers.
"""

import struct

import numpy as np


def slow_accumulate(points):
    total = np.zeros(points.shape[1])
    n = points.shape[0]
    for i in range(n):  # expect: HK101
        total += points[i]
    return total


def while_over_rows(points):
    count = len(points)
    i = 0
    while i < count:  # expect: HK101
        i += 1
    return i


def boxed_keys(coords):
    keys = np.empty(coords.shape[0], dtype=object)  # expect: HK102
    return keys


def boxed_cast(values):
    return values.astype(object)  # expect: HK102


def to_python_list(values):
    return values.tolist()  # expect: HK103


def per_element_int(values):
    out = []
    rows = values.shape[0]
    for i in range(rows):  # expect: HK101
        out.append(int(values[i]))  # expect: HK104
    return out


def per_element_struct(values):
    out = []
    for value in values.tolist():  # expect: HK103
        out.append(struct.pack(">Q", value))  # expect: HK104
    return out


def alloc_per_iteration(batches):
    results = []
    for batch in batches:
        row = np.zeros(8)  # expect: HK105
        results.append(row + batch.sum())
    return results
